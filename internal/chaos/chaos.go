// Package chaos is a deterministic fault injector for the Ampere control
// plane. It wraps the controller's two dependency interfaces
// (core.PowerReader, core.FreezeAPI) and the monitor's TSDB write path
// (monitor.Store) with declarative fault plans: stale and corrupt power
// readings, whole-domain monitor blackouts, transient and persistent
// scheduler API failures with injected latency, TSDB write rejection, and
// scheduled controller crash/restarts.
//
// Determinism is the point. Every stochastic decision is a pure function of
// (plan seed, fault kind, simulated time, per-target salt) — not a drawn
// RNG stream — so two controllers with different call patterns (a naive one
// and a resilient one that retries) still experience the *identical* fault
// schedule. That is what makes regime comparisons under fault storms fair.
package chaos

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind names one class of injected fault.
type Kind string

// The supported fault kinds.
const (
	// ReadBlackout freezes the reader's view: during the window every read
	// returns the last pre-blackout value with its original (now stale)
	// timestamp, exactly what a crashed monitor leaves behind.
	ReadBlackout Kind = "read-blackout"
	// ReadNaN replaces each group reading with NaN with probability Rate.
	ReadNaN Kind = "read-nan"
	// ReadOutlier multiplies each group reading by Factor with probability
	// Rate — a corrupt IPMI sample.
	ReadOutlier Kind = "read-outlier"
	// ReadLag reports sample timestamps Lag older than they are.
	ReadLag Kind = "read-lag"
	// APITransient fails each Freeze/Unfreeze call with probability Rate.
	APITransient Kind = "api-transient"
	// APIPersistent fails every Freeze/Unfreeze call in the window.
	APIPersistent Kind = "api-persistent"
	// APILatency delays each call by Latency; when a positive Timeout is set
	// and Latency >= Timeout, the call times out (fails without reaching the
	// scheduler).
	APILatency Kind = "api-latency"
	// StoreReject makes the TSDB reject each write with probability Rate
	// (Rate 0 means every write in the window).
	StoreReject Kind = "store-reject"
	// CtlCrash asks the harness to crash the controller at From and restart
	// it (Resync + Start) at To. The injector cannot kill the controller
	// itself; Plan.Crashes exposes these windows for the harness to execute.
	CtlCrash Kind = "ctl-crash"
	// BudgetDip curtails the power budget: at each minute boundary in the
	// window a dip of the fault's Depth begins with probability Rate and
	// lasts Dwell — a grid demand-response event the controller has not been
	// pre-warned about. The injector only computes the resulting multiplier
	// (BudgetMultiplier, DriveBudget); the harness applies it through the
	// controller's SetBudget path, so — like CtlCrash — the fault models an
	// external signal, not a wrapped dependency.
	BudgetDip Kind = "budget-dip"
)

// Fault is one declarative fault: a kind, an active window, and the kind's
// parameters.
type Fault struct {
	Kind Kind
	// From and To bound the active window [From, To).
	From, To sim.Time
	// Rate is the per-decision probability for stochastic kinds.
	Rate float64
	// Factor scales outlier readings (ReadOutlier).
	Factor float64
	// Lag ages reported sample timestamps (ReadLag).
	Lag sim.Duration
	// Latency is added to each API call (APILatency).
	Latency sim.Duration
	// Timeout, when positive, fails APILatency calls whose injected latency
	// reaches it.
	Timeout sim.Duration
	// Depth is the budget fraction removed by a BudgetDip (0.2 = a 20 %
	// curtailment); Dwell is how long each dip lasts once begun.
	Depth float64
	Dwell sim.Duration
}

func (f Fault) active(now sim.Time) bool { return now >= f.From && now < f.To }

// Plan is a seeded schedule of faults.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// Validate reports malformed plans: inverted windows, probabilities outside
// [0, 1], or missing kind parameters.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		switch {
		case f.To <= f.From:
			return fmt.Errorf("chaos: fault %d (%s): window [%v, %v) is empty", i, f.Kind, f.From, f.To)
		case f.Rate < 0 || f.Rate > 1 || math.IsNaN(f.Rate):
			return fmt.Errorf("chaos: fault %d (%s): rate %v outside [0, 1]", i, f.Kind, f.Rate)
		}
		switch f.Kind {
		case ReadBlackout, APIPersistent, StoreReject, CtlCrash:
		case ReadNaN, ReadOutlier, APITransient:
			if f.Rate == 0 {
				return fmt.Errorf("chaos: fault %d (%s): zero rate never fires", i, f.Kind)
			}
			if f.Kind == ReadOutlier && (f.Factor <= 0 || math.IsNaN(f.Factor)) {
				return fmt.Errorf("chaos: fault %d (%s): factor %v must be positive", i, f.Kind, f.Factor)
			}
		case ReadLag:
			if f.Lag <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): non-positive lag %v", i, f.Kind, f.Lag)
			}
		case APILatency:
			if f.Latency <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): non-positive latency %v", i, f.Kind, f.Latency)
			}
		case BudgetDip:
			if f.Rate == 0 {
				return fmt.Errorf("chaos: fault %d (%s): zero rate never fires", i, f.Kind)
			}
			if math.IsNaN(f.Depth) || f.Depth <= 0 || f.Depth >= 1 {
				return fmt.Errorf("chaos: fault %d (%s): depth %v outside (0, 1)", i, f.Kind, f.Depth)
			}
			if f.Dwell <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): non-positive dwell %v", i, f.Kind, f.Dwell)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// Crashes returns the plan's CtlCrash faults in declaration order, for the
// harness to schedule.
func (p Plan) Crashes() []Fault {
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == CtlCrash {
			out = append(out, f)
		}
	}
	return out
}

// Stats counts what the injector actually did.
type Stats struct {
	// ReadsBlackedOut counts group reads answered from the frozen
	// pre-blackout snapshot.
	ReadsBlackedOut int64
	// ReadsNaN and ReadsOutlier count corrupted group readings served.
	ReadsNaN     int64
	ReadsOutlier int64
	// ReadsLagged counts group reads whose timestamp was aged.
	ReadsLagged int64
	// APIFailures counts Freeze/Unfreeze calls failed by injection.
	APIFailures int64
	// APILatency is the total latency injected into API calls.
	APILatency sim.Duration
	// StoreRejects counts TSDB writes rejected by injection.
	StoreRejects int64
	// BudgetDips counts transitions from an uncurtailed to a curtailed
	// budget (dip onsets as the driver saw them, not scheduled onsets);
	// CurtailedIntervals counts driver intervals spent below full budget.
	BudgetDips         int64
	CurtailedIntervals int64
}

// Injector owns a plan and hands out faulty wrappers for the control
// plane's dependencies. All wrappers share one Stats.
type Injector struct {
	eng   *sim.Engine
	plan  Plan
	stats Stats
	met   *chaosMetrics
}

// chaosMetrics mirrors Stats as atomic counters so a live /metrics scrape
// never races the simulation goroutine driving the wrappers.
type chaosMetrics struct {
	readsBlackedOut *obs.Counter
	readsNaN        *obs.Counter
	readsOutlier    *obs.Counter
	readsLagged     *obs.Counter
	apiFailures     *obs.Counter
	apiLatencyMS    *obs.Counter
	storeRejects    *obs.Counter
	budgetDips      *obs.Counter
	curtailedIvals  *obs.Counter
}

// Instrument registers the injector's counters on reg (nil is a no-op):
//
//	chaos_reads_blacked_out_total         counter
//	chaos_reads_nan_total                 counter
//	chaos_reads_outlier_total             counter
//	chaos_reads_lagged_total              counter
//	chaos_api_failures_total              counter
//	chaos_api_injected_latency_ms_total   counter, virtual milliseconds
//	chaos_store_rejects_total             counter
//	chaos_budget_dips_total               counter
//	chaos_curtailed_intervals_total       counter
//
// Call before handing out wrappers.
func (in *Injector) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	in.met = &chaosMetrics{
		readsBlackedOut: reg.Counter("chaos_reads_blacked_out_total",
			"Group reads answered from the frozen pre-blackout snapshot."),
		readsNaN: reg.Counter("chaos_reads_nan_total",
			"Group readings corrupted to NaN."),
		readsOutlier: reg.Counter("chaos_reads_outlier_total",
			"Group readings scaled to outliers."),
		readsLagged: reg.Counter("chaos_reads_lagged_total",
			"Group reads whose sample timestamp was aged."),
		apiFailures: reg.Counter("chaos_api_failures_total",
			"Freeze/Unfreeze calls failed by injection."),
		apiLatencyMS: reg.Counter("chaos_api_injected_latency_ms_total",
			"Total virtual latency injected into API calls, in milliseconds."),
		storeRejects: reg.Counter("chaos_store_rejects_total",
			"TSDB writes rejected by injection."),
		budgetDips: reg.Counter("chaos_budget_dips_total",
			"Transitions into a curtailed budget seen by the budget driver."),
		curtailedIvals: reg.Counter("chaos_curtailed_intervals_total",
			"Budget-driver intervals spent below full budget."),
	}
}

// New builds an injector for a validated plan.
func New(eng *sim.Engine, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{eng: eng, plan: plan}, nil
}

// Plan returns the injector's fault plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// decide is the deterministic coin: true with probability rate, as a pure
// function of (seed, kind, now, salt). Callers that would flip the same
// coin at the same instant get the same answer, however many times they
// ask — so a retrying controller and a naive one see identical faults.
func (in *Injector) decide(kind Kind, now sim.Time, salt uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	x := sim.SubSeed(in.plan.Seed, string(kind)) ^ uint64(now)*0x9e3779b97f4a7c15 ^ salt*0xbf58476d1ce4e5b9
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < rate
}

// faultsOf yields the active faults of one kind at time now.
func (in *Injector) faultsOf(kind Kind, now sim.Time) []Fault {
	var out []Fault
	for _, f := range in.plan.Faults {
		if f.Kind == kind && f.active(now) {
			out = append(out, f)
		}
	}
	return out
}

// anyActive reports whether any fault of the kind is active at now.
func (in *Injector) anyActive(kind Kind, now sim.Time) (Fault, bool) {
	for _, f := range in.plan.Faults {
		if f.Kind == kind && f.active(now) {
			return f, true
		}
	}
	return Fault{}, false
}
