package chaos

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// fakeReader is a timed power source whose value tracks simulated time, so
// staleness is observable.
type fakeReader struct {
	eng *sim.Engine
}

func (f *fakeReader) value() float64 { return 100 + float64(f.eng.Now())/float64(sim.Minute) }

func (f *fakeReader) ServerPower(cluster.ServerID) (float64, bool) { return f.value(), true }

func (f *fakeReader) GroupPower([]cluster.ServerID) (float64, bool) { return f.value(), true }

func (f *fakeReader) GroupSampleTime([]cluster.ServerID) (sim.Time, bool) { return f.eng.Now(), true }

// fakeAPI records calls and never fails on its own.
type fakeAPI struct{ freezes, unfreezes int }

func (f *fakeAPI) Freeze(cluster.ServerID) error   { f.freezes++; return nil }
func (f *fakeAPI) Unfreeze(cluster.ServerID) error { f.unfreezes++; return nil }

var group = []cluster.ServerID{0, 1, 2, 3}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Faults: []Fault{{Kind: ReadBlackout, From: 10, To: 10}}},
		{Faults: []Fault{{Kind: ReadNaN, From: 0, To: 10, Rate: 1.5}}},
		{Faults: []Fault{{Kind: ReadNaN, From: 0, To: 10, Rate: 0}}},
		{Faults: []Fault{{Kind: ReadOutlier, From: 0, To: 10, Rate: 0.5, Factor: -2}}},
		{Faults: []Fault{{Kind: ReadLag, From: 0, To: 10}}},
		{Faults: []Fault{{Kind: APILatency, From: 0, To: 10}}},
		{Faults: []Fault{{Kind: Kind("nonsense"), From: 0, To: 10}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
	}
	good := Plan{Seed: 1, Faults: []Fault{
		{Kind: ReadBlackout, From: 0, To: sim.Time(sim.Hour)},
		{Kind: APITransient, From: 0, To: sim.Time(sim.Hour), Rate: 0.5},
		{Kind: StoreReject, From: 0, To: sim.Time(sim.Hour)},
		{Kind: CtlCrash, From: 0, To: sim.Time(sim.Hour)},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	if got := len(good.Crashes()); got != 1 {
		t.Fatalf("Crashes() = %d faults, want 1", got)
	}
}

func TestBlackoutFreezesSnapshotAndTimestamp(t *testing.T) {
	eng := sim.NewEngine()
	in, err := New(eng, Plan{Seed: 7, Faults: []Fault{
		{Kind: ReadBlackout, From: sim.Time(10 * sim.Minute), To: sim.Time(20 * sim.Minute)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := in.WrapReader(&fakeReader{eng: eng})

	type obs struct {
		v  float64
		at sim.Time
		ok bool
	}
	read := func() obs {
		v, ok := r.GroupPower(group)
		at, tok := r.GroupSampleTime(group)
		return obs{v: v, at: at, ok: ok && tok}
	}
	var before, during, after obs
	eng.At(sim.Time(9*sim.Minute), "t9", func(sim.Time) { before = read() })
	eng.At(sim.Time(15*sim.Minute), "t15", func(sim.Time) { during = read() })
	eng.At(sim.Time(25*sim.Minute), "t25", func(sim.Time) { after = read() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if !before.ok || before.at != sim.Time(9*sim.Minute) {
		t.Fatalf("pre-blackout read unhealthy: %+v", before)
	}
	if !during.ok {
		t.Fatalf("blackout read should serve the frozen snapshot, got %+v", during)
	}
	if during.v != before.v || during.at != before.at {
		t.Fatalf("blackout should freeze value and timestamp: before %+v during %+v", before, during)
	}
	if !after.ok || after.at != sim.Time(25*sim.Minute) || after.v == before.v {
		t.Fatalf("post-blackout read should be fresh again: %+v", after)
	}
	if in.Stats().ReadsBlackedOut == 0 {
		t.Fatal("ReadsBlackedOut not counted")
	}
}

func TestBlackoutBeforeFirstSampleReturnsNotOK(t *testing.T) {
	eng := sim.NewEngine()
	in, err := New(eng, Plan{Faults: []Fault{
		{Kind: ReadBlackout, From: 0, To: sim.Time(10 * sim.Minute)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := in.WrapReader(&fakeReader{eng: eng})
	if _, ok := r.GroupPower(group); ok {
		t.Fatal("blackout with no cached sample must report not-ok")
	}
	if _, ok := r.ServerPower(0); ok {
		t.Fatal("server read during blackout with no cache must report not-ok")
	}
}

func TestNaNAndOutlierRates(t *testing.T) {
	eng := sim.NewEngine()
	in, err := New(eng, Plan{Seed: 42, Faults: []Fault{
		{Kind: ReadNaN, From: 0, To: sim.Time(sim.Hour), Rate: 0.3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := in.WrapReader(&fakeReader{eng: eng})
	nan := 0
	const n = 2000
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Time(sim.Second)
		eng.At(at, "probe", func(sim.Time) {
			if v, ok := r.GroupPower(group); ok && math.IsNaN(v) {
				nan++
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	frac := float64(nan) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("NaN fraction %.3f far from configured 0.3", frac)
	}
}

func TestFaultDecisionsAreTimeDeterministic(t *testing.T) {
	// Two injectors with the same plan must corrupt the same instants even
	// when one of them is queried more often — the property that makes the
	// naive-vs-resilient comparison fair.
	plan := Plan{Seed: 99, Faults: []Fault{
		{Kind: ReadNaN, From: 0, To: sim.Time(sim.Hour), Rate: 0.4},
	}}
	run := func(extraReads bool) []bool {
		eng := sim.NewEngine()
		in, err := New(eng, plan)
		if err != nil {
			t.Fatal(err)
		}
		r := in.WrapReader(&fakeReader{eng: eng})
		var out []bool
		for i := 0; i < 200; i++ {
			eng.At(sim.Time(i)*sim.Time(sim.Minute), "probe", func(sim.Time) {
				if extraReads {
					r.GroupPower(group) // extra call must not shift later outcomes
				}
				v, _ := r.GroupPower(group)
				out = append(out, math.IsNaN(v))
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("minute %d: fault outcome differs between call patterns", i)
		}
	}
}

func TestAPIFaults(t *testing.T) {
	eng := sim.NewEngine()
	in, err := New(eng, Plan{Seed: 5, Faults: []Fault{
		{Kind: APIPersistent, From: 0, To: sim.Time(10 * sim.Minute)},
		{Kind: APILatency, From: sim.Time(20 * sim.Minute), To: sim.Time(30 * sim.Minute),
			Latency: 2 * sim.Second, Timeout: sim.Second},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inner := &fakeAPI{}
	api := in.WrapAPI(inner)

	var errDown, errTimeout, okLater error
	eng.At(sim.Time(5*sim.Minute), "down", func(sim.Time) { errDown = api.Freeze(1) })
	eng.At(sim.Time(25*sim.Minute), "slow", func(sim.Time) { errTimeout = api.Unfreeze(1) })
	eng.At(sim.Time(40*sim.Minute), "ok", func(sim.Time) { okLater = api.Freeze(1) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if errDown == nil {
		t.Fatal("persistent window should fail calls")
	}
	if errTimeout == nil {
		t.Fatal("latency >= timeout should fail calls")
	}
	if okLater != nil {
		t.Fatalf("call outside windows failed: %v", okLater)
	}
	if inner.freezes != 1 || inner.unfreezes != 0 {
		t.Fatalf("backend saw %d/%d calls, want 1/0", inner.freezes, inner.unfreezes)
	}
	st := in.Stats()
	if st.APIFailures != 2 || st.APILatency != 2*sim.Second {
		t.Fatalf("stats %+v", st)
	}
}

type memStore struct {
	writes int
}

func (s *memStore) Append(string, sim.Time, float64) error { s.writes++; return nil }

func TestStoreReject(t *testing.T) {
	eng := sim.NewEngine()
	in, err := New(eng, Plan{Faults: []Fault{
		{Kind: StoreReject, From: 0, To: sim.Time(10 * sim.Minute)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inner := &memStore{}
	st := in.WrapStore(inner)

	var errIn, errOut error
	eng.At(sim.Time(5*sim.Minute), "in", func(now sim.Time) { errIn = st.Append("dc", now, 1) })
	eng.At(sim.Time(15*sim.Minute), "out", func(now sim.Time) { errOut = st.Append("dc", now, 1) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if errIn == nil || errOut != nil {
		t.Fatalf("want reject-then-accept, got %v / %v", errIn, errOut)
	}
	if inner.writes != 1 || in.Stats().StoreRejects != 1 {
		t.Fatalf("writes %d rejects %d", inner.writes, in.Stats().StoreRejects)
	}
}
