package chaos

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// API wraps a core.FreezeAPI with injected failures and latency.
type API struct {
	in    *Injector
	inner core.FreezeAPI
}

// WrapAPI interposes the injector on a freeze API.
func (in *Injector) WrapAPI(api core.FreezeAPI) *API {
	return &API{in: in, inner: api}
}

// Freeze implements core.FreezeAPI.
func (a *API) Freeze(id cluster.ServerID) error {
	if err := a.inject("freeze", id); err != nil {
		return err
	}
	return a.inner.Freeze(id)
}

// Unfreeze implements core.FreezeAPI.
func (a *API) Unfreeze(id cluster.ServerID) error {
	if err := a.inject("unfreeze", id); err != nil {
		return err
	}
	return a.inner.Unfreeze(id)
}

// inject applies the API faults active right now; a non-nil error means the
// call never reaches the scheduler.
func (a *API) inject(op string, id cluster.ServerID) error {
	now := a.in.eng.Now()
	if f, on := a.in.anyActive(APILatency, now); on {
		a.in.stats.APILatency += f.Latency
		if a.in.met != nil {
			a.in.met.apiLatencyMS.Add(int64(f.Latency))
		}
		if f.Timeout > 0 && f.Latency >= f.Timeout {
			a.in.stats.APIFailures++
			if a.in.met != nil {
				a.in.met.apiFailures.Inc()
			}
			return fmt.Errorf("chaos: %s %d timed out after %v at %v", op, id, f.Timeout, now)
		}
	}
	if _, on := a.in.anyActive(APIPersistent, now); on {
		a.in.stats.APIFailures++
		if a.in.met != nil {
			a.in.met.apiFailures.Inc()
		}
		return fmt.Errorf("chaos: scheduler down, %s %d refused at %v", op, id, now)
	}
	for _, f := range a.in.faultsOf(APITransient, now) {
		if a.in.decide(APITransient, now, uint64(id)+1, f.Rate) {
			a.in.stats.APIFailures++
			if a.in.met != nil {
				a.in.met.apiFailures.Inc()
			}
			return fmt.Errorf("chaos: transient %s %d failure at %v", op, id, now)
		}
	}
	return nil
}

// Store wraps a monitor.Store-compatible sink with write rejection. It is
// declared against the minimal Append contract so it can wrap tsdb.DB
// directly.
type Store struct {
	in    *Injector
	inner interface {
		Append(name string, t sim.Time, v float64) error
	}
}

// WrapStore interposes the injector on a TSDB write path.
func (in *Injector) WrapStore(s interface {
	Append(name string, t sim.Time, v float64) error
}) *Store {
	return &Store{in: in, inner: s}
}

// Append implements monitor.Store with StoreReject faults applied.
func (s *Store) Append(name string, t sim.Time, v float64) error {
	now := s.in.eng.Now()
	for _, f := range s.in.faultsOf(StoreReject, now) {
		if f.Rate == 0 || s.in.decide(StoreReject, now, sim.SubSeed(0, name), f.Rate) {
			s.in.stats.StoreRejects++
			if s.in.met != nil {
				s.in.met.storeRejects.Inc()
			}
			return fmt.Errorf("chaos: tsdb write %q rejected at %v", name, now)
		}
	}
	return s.inner.Append(name, t, v)
}
