package chaos

import (
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// Reader wraps a core.PowerReader with read-path faults. It also implements
// core.TimedPowerReader, so a resilient controller sees blackout staleness
// through sample timestamps while a naive one silently consumes the frozen
// snapshot — the same asymmetry a real monitor outage produces.
//
// The controller's parallel plan phase calls the read methods from multiple
// goroutines, so the snapshot caches and injector counters are guarded by
// mu. Fault decisions themselves are pure hashes of (seed, time, salt) —
// they stay deterministic whatever the interleaving.
type Reader struct {
	in    *Injector
	inner core.PowerReader
	timed core.TimedPowerReader // non-nil when inner carries sample times

	mu      sync.Mutex
	groups  map[uint64]sample // last healthy reading per group
	servers map[cluster.ServerID]sample
}

type sample struct {
	v  float64
	at sim.Time
}

// WrapReader interposes the injector on a power reader.
func (in *Injector) WrapReader(r core.PowerReader) *Reader {
	cr := &Reader{
		in:      in,
		inner:   r,
		groups:  make(map[uint64]sample),
		servers: make(map[cluster.ServerID]sample),
	}
	cr.timed, _ = r.(core.TimedPowerReader)
	return cr
}

// groupKey folds a server set into a stable cache key.
func groupKey(ids []cluster.ServerID) uint64 {
	x := uint64(len(ids))
	for _, id := range ids {
		x ^= uint64(id) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
	}
	return x
}

// sampleTime reports when inner's current snapshot was taken (now for
// untimed readers).
func (r *Reader) sampleTime(ids []cluster.ServerID, now sim.Time) sim.Time {
	if r.timed != nil {
		if t, ok := r.timed.GroupSampleTime(ids); ok {
			return t
		}
	}
	return now
}

// GroupPower implements core.PowerReader with faults applied.
func (r *Reader) GroupPower(ids []cluster.ServerID) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.in.eng.Now()
	key := groupKey(ids)
	if _, on := r.in.anyActive(ReadBlackout, now); on {
		s, ok := r.groups[key]
		if !ok {
			return 0, false // blackout before the first healthy sample
		}
		r.in.stats.ReadsBlackedOut++
		if r.in.met != nil {
			r.in.met.readsBlackedOut.Inc()
		}
		return s.v, true
	}
	v, ok := r.inner.GroupPower(ids)
	if !ok {
		return 0, false
	}
	r.groups[key] = sample{v: v, at: r.sampleTime(ids, now)}
	for _, f := range r.in.faultsOf(ReadNaN, now) {
		if r.in.decide(ReadNaN, now, key, f.Rate) {
			r.in.stats.ReadsNaN++
			if r.in.met != nil {
				r.in.met.readsNaN.Inc()
			}
			return math.NaN(), true
		}
	}
	for _, f := range r.in.faultsOf(ReadOutlier, now) {
		if r.in.decide(ReadOutlier, now, key, f.Rate) {
			r.in.stats.ReadsOutlier++
			if r.in.met != nil {
				r.in.met.readsOutlier.Inc()
			}
			return v * f.Factor, true
		}
	}
	return v, true
}

// ServerPower implements core.PowerReader. Ranking reads see the same
// blackout and corruption faults as group reads.
func (r *Reader) ServerPower(id cluster.ServerID) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.in.eng.Now()
	if _, on := r.in.anyActive(ReadBlackout, now); on {
		s, ok := r.servers[id]
		if !ok {
			return 0, false
		}
		return s.v, true
	}
	v, ok := r.inner.ServerPower(id)
	if !ok {
		return 0, false
	}
	r.servers[id] = sample{v: v, at: now}
	for _, f := range r.in.faultsOf(ReadNaN, now) {
		if r.in.decide(ReadNaN, now, uint64(id)+1, f.Rate) {
			return math.NaN(), true
		}
	}
	for _, f := range r.in.faultsOf(ReadOutlier, now) {
		if r.in.decide(ReadOutlier, now, uint64(id)+1, f.Rate) {
			return v * f.Factor, true
		}
	}
	return v, true
}

// GroupSampleTime implements core.TimedPowerReader: during a blackout the
// reported time is the frozen snapshot's, and lag faults age it further.
func (r *Reader) GroupSampleTime(ids []cluster.ServerID) (sim.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.in.eng.Now()
	at := r.sampleTime(ids, now)
	if _, on := r.in.anyActive(ReadBlackout, now); on {
		s, ok := r.groups[groupKey(ids)]
		if !ok {
			return 0, false
		}
		at = s.at
	}
	if f, on := r.in.anyActive(ReadLag, now); on {
		r.in.stats.ReadsLagged++
		if r.in.met != nil {
			r.in.met.readsLagged.Inc()
		}
		at = at.Add(-f.Lag)
	}
	return at, true
}
