// Package capping implements the hardware power-capping baseline the paper
// compares against (§2.1, §4.3): a fast RAPL/DVFS-style reactive loop that,
// whenever a power domain (a row PDU, or a virtual group in controlled
// experiments) exceeds its budget, scales server frequencies down so the
// aggregate draw fits. Unlike Ampere it acts on running jobs — slowed CPUs
// inflate batch durations and interactive latencies — which is exactly the
// SLA damage Fig 11 quantifies.
package capping

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Domain is one independently budgeted set of servers.
type Domain struct {
	Name    string
	Servers []*cluster.Server
	// BudgetW is the enforced power budget; the capper keeps the domain's
	// total draw at or below it.
	BudgetW float64
}

// Stats describes one domain's capping activity.
type Stats struct {
	Intervals       int64 // control intervals observed
	CappedIntervals int64 // intervals with at least one capped server
	CapTransitions  int64 // cap applied where there was none
	// CappedServerSamples / ServerSamples gives the fraction of
	// server-intervals spent capped (the paper reports 54.34 % of servers
	// capped for ~15 % of the time without Ampere).
	CappedServerSamples int64
	ServerSamples       int64
}

// Mode selects the capping policy.
type Mode int

const (
	// Proportional (the default) coordinates across the domain: when the
	// total demand exceeds the budget, every server's active power scales
	// by the same factor, so slack on cold servers benefits hot ones.
	Proportional Mode = iota
	// PerServerStatic is the naive baseline: every server permanently
	// capped at budget/n, its fair share, with no coordination. Safe by
	// construction but wasteful — a hot server throttles even while its
	// neighbours idle. The ablation quantifies the cost (§2.1's argument
	// for dynamic power management).
	PerServerStatic
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Proportional:
		return "proportional"
	case PerServerStatic:
		return "per-server-static"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls the reaction loop.
type Config struct {
	// Interval is the reaction period. RAPL reacts in under a millisecond;
	// we default to one simulated second, far faster than workload dynamics
	// and the 1-minute monitor, which preserves its "instant safety net"
	// role without milliseconds-scale event load.
	Interval sim.Duration
	// Mode selects the capping policy (Proportional by default).
	Mode Mode
}

// DefaultConfig returns the 1-second reaction loop.
func DefaultConfig() Config { return Config{Interval: sim.Second} }

// Capper runs the reactive loop over a set of domains.
type Capper struct {
	eng     *sim.Engine
	cfg     Config
	domains []Domain
	stats   []Stats
	handle  *sim.Handle
	enabled bool
}

// New validates the domains and builds a capper.
func New(eng *sim.Engine, cfg Config, domains []Domain) (*Capper, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("capping: non-positive interval %v", cfg.Interval)
	}
	for i, d := range domains {
		if len(d.Servers) == 0 {
			return nil, fmt.Errorf("capping: domain %d (%s) has no servers", i, d.Name)
		}
		if d.BudgetW <= 0 {
			return nil, fmt.Errorf("capping: domain %d (%s) has budget %v", i, d.Name, d.BudgetW)
		}
	}
	return &Capper{eng: eng, cfg: cfg, domains: domains, stats: make([]Stats, len(domains)), enabled: true}, nil
}

// RowDomains builds one domain per cluster row with the given budgets
// (budgets[r] ≤ 0 leaves row r uncontrolled).
func RowDomains(c *cluster.Cluster, budgets []float64) []Domain {
	var out []Domain
	for r := 0; r < c.Rows(); r++ {
		if r >= len(budgets) || budgets[r] <= 0 {
			continue
		}
		out = append(out, Domain{
			Name:    fmt.Sprintf("row/%d", r),
			Servers: c.Row(r),
			BudgetW: budgets[r],
		})
	}
	return out
}

// Start begins the reaction loop.
func (cp *Capper) Start() {
	if cp.handle != nil {
		return
	}
	cp.handle = cp.eng.Every(cp.eng.Now(), cp.cfg.Interval, "power-capper", cp.step)
}

// Stop halts the loop, leaving current caps in place.
func (cp *Capper) Stop() {
	if cp.handle != nil {
		cp.handle.Cancel()
		cp.handle = nil
	}
}

// SetEnabled toggles enforcement. While disabled the loop still runs but
// removes all caps — the controlled experiments "turn off the power capping
// so we can observe the real power demand" (§4.1.2).
func (cp *Capper) SetEnabled(on bool) { cp.enabled = on }

// Stats returns a copy of domain i's counters.
func (cp *Capper) Stats(i int) Stats { return cp.stats[i] }

// SetBudget retargets domain i's enforced budget at runtime. A capper
// deployed as Ampere's safety net follows the controller's effective budget
// (core.Controller.OnBudgetChange), so a demand-response curtailment tightens
// the last-resort cap along with the control target.
func (cp *Capper) SetBudget(i int, w float64) error {
	if i < 0 || i >= len(cp.domains) {
		return fmt.Errorf("capping: domain %d out of range [0,%d)", i, len(cp.domains))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("capping: domain %d (%s) budget %v must be positive and finite",
			i, cp.domains[i].Name, w)
	}
	cp.domains[i].BudgetW = w
	return nil
}

// stepStatic enforces the uncoordinated fair-share policy: each server
// permanently capped at budget/n when its demand exceeds that share.
func (cp *Capper) stepStatic(d *Domain, st *Stats) {
	st.ServerSamples += int64(len(d.Servers))
	share := d.BudgetW / float64(len(d.Servers))
	anyCapped := false
	for _, sv := range d.Servers {
		wasCapped := sv.Capped()
		if sv.DemandW() > share {
			if !wasCapped || relDiff(sv.CapLevelW(), share) > 0.001 {
				sv.ApplyCap(share)
			}
			st.CappedServerSamples++
			anyCapped = true
			if !wasCapped {
				st.CapTransitions++
			}
		} else if wasCapped {
			sv.RemoveCap()
		}
	}
	if anyCapped {
		st.CappedIntervals++
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return d
	}
	return d / b
}

// step is one reaction: per domain, compare uncapped demand to the budget
// and apply proportional frequency scaling of the above-idle power.
func (cp *Capper) step(sim.Time) {
	for i := range cp.domains {
		d := &cp.domains[i]
		st := &cp.stats[i]
		st.Intervals++

		if !cp.enabled {
			for _, sv := range d.Servers {
				if sv.Capped() {
					sv.RemoveCap()
				}
			}
			continue
		}

		if cp.cfg.Mode == PerServerStatic {
			cp.stepStatic(d, st)
			continue
		}

		var demand, idleSum float64
		for _, sv := range d.Servers {
			demand += sv.DemandW()
			idleSum += sv.IdleW()
		}
		st.ServerSamples += int64(len(d.Servers))

		if demand <= d.BudgetW {
			for _, sv := range d.Servers {
				if sv.Capped() {
					sv.RemoveCap()
				}
			}
			continue
		}

		st.CappedIntervals++
		// Scale every server's active (above-idle) draw by the same factor.
		// Idle power is not reducible by DVFS, so the scaling applies to the
		// active portion only; if even all-idle exceeds the budget the caps
		// floor at the minimum frequency and the domain stays over budget
		// (a real breaker-risk condition).
		factor := 0.0
		if demand > idleSum {
			factor = (d.BudgetW - idleSum) / (demand - idleSum)
		}
		if factor < 0 {
			factor = 0
		}
		for _, sv := range d.Servers {
			idle := sv.IdleW()
			level := idle + (sv.DemandW()-idle)*factor
			if level <= 0 {
				level = 1 // cap must be positive; floors frequency anyway
			}
			wasCapped := sv.Capped()
			if sv.DemandW() > level {
				// Re-issuing a near-identical cap would force the executor
				// to reschedule every running job's completion each
				// interval; real RAPL quantizes to frequency steps anyway,
				// so a 2 % dead band is faithful and cheap.
				if !wasCapped || relDiff(sv.CapLevelW(), level) > 0.02 {
					sv.ApplyCap(level)
				}
				st.CappedServerSamples++
				if !wasCapped {
					st.CapTransitions++
				}
			} else if wasCapped {
				sv.RemoveCap()
			}
		}
	}
}
