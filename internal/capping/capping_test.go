package capping

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func newCluster(t *testing.T, servers int) *cluster.Cluster {
	t.Helper()
	sp := cluster.DefaultSpec()
	sp.Rows, sp.RacksPerRow, sp.ServersPerRack = 1, 1, servers
	sp.NoiseSigmaW = 0
	c, err := cluster.New(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2)
	if _, err := New(eng, Config{Interval: 0}, nil); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := New(eng, DefaultConfig(), []Domain{{Name: "x", Servers: nil, BudgetW: 1}}); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := New(eng, DefaultConfig(), []Domain{{Name: "x", Servers: c.Row(0), BudgetW: 0}}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCapsWhenOverBudget(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 4)
	for _, sv := range c.Servers {
		sv.Allocate(c.Spec.Containers, float64(c.Spec.Containers)) // 250 W each
	}
	budget := 900.0 // demand 1000 W
	cp, err := New(eng, DefaultConfig(), []Domain{{Name: "row", Servers: c.Row(0), BudgetW: budget}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	if err := eng.RunUntil(sim.Time(2 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if got := c.RowDrawW(0); got > budget+1e-6 {
		t.Errorf("row draw %v over budget %v", got, budget)
	}
	for _, sv := range c.Servers {
		if !sv.Capped() {
			t.Errorf("server %d not capped", sv.ID)
		}
		if sv.Speed() >= 1 {
			t.Errorf("server %d speed %v, want < 1", sv.ID, sv.Speed())
		}
	}
	st := cp.Stats(0)
	if st.CappedIntervals == 0 || st.CapTransitions != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestUncapsWhenUnderBudget(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2)
	for _, sv := range c.Servers {
		sv.Allocate(c.Spec.Containers, float64(c.Spec.Containers))
	}
	cp, err := New(eng, DefaultConfig(), []Domain{{Name: "row", Servers: c.Row(0), BudgetW: 450}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if !c.Server(0).Capped() {
		t.Fatal("not capped under overload")
	}
	// Load drops: release everything.
	for _, sv := range c.Servers {
		sv.Release(c.Spec.Containers, float64(c.Spec.Containers))
	}
	eng.RunUntil(sim.Time(3 * sim.Second))
	for _, sv := range c.Servers {
		if sv.Capped() {
			t.Errorf("server %d still capped after load drop", sv.ID)
		}
		if sv.Speed() != 1 {
			t.Errorf("server %d speed %v", sv.ID, sv.Speed())
		}
	}
}

func TestProportionalFairness(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2)
	sp := c.Spec
	// Server 0 at full load, server 1 at half load.
	c.Server(0).Allocate(sp.Containers, float64(sp.Containers))
	c.Server(1).Allocate(sp.Containers/2, float64(sp.Containers)/2)
	demand := c.Server(0).DemandW() + c.Server(1).DemandW()
	budget := demand - 40
	cp, err := New(eng, DefaultConfig(), []Domain{{Name: "row", Servers: c.Row(0), BudgetW: budget}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	eng.RunUntil(sim.Time(sim.Second))
	// Both servers' active power scaled by the same factor.
	idle := sp.IdlePowerW
	f0 := (c.Server(0).DrawW() - idle) / (c.Server(0).DemandW() - idle)
	f1 := (c.Server(1).DrawW() - idle) / (c.Server(1).DemandW() - idle)
	if math.Abs(f0-f1) > 1e-9 {
		t.Errorf("unequal scaling: %v vs %v", f0, f1)
	}
	if total := c.RowDrawW(0); math.Abs(total-budget) > 1e-6 {
		t.Errorf("total draw %v, want %v", total, budget)
	}
}

func TestDisabledRemovesCaps(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2)
	for _, sv := range c.Servers {
		sv.Allocate(c.Spec.Containers, float64(c.Spec.Containers))
	}
	cp, err := New(eng, DefaultConfig(), []Domain{{Name: "row", Servers: c.Row(0), BudgetW: 400}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	eng.RunUntil(sim.Time(sim.Second))
	if !c.Server(0).Capped() {
		t.Fatal("not capped")
	}
	cp.SetEnabled(false)
	eng.RunUntil(sim.Time(3 * sim.Second))
	if c.Server(0).Capped() || c.Server(1).Capped() {
		t.Error("caps not removed when disabled")
	}
}

func TestBudgetBelowIdleFloorsFrequency(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2)
	for _, sv := range c.Servers {
		sv.Allocate(c.Spec.Containers, float64(c.Spec.Containers))
	}
	// Budget below the 2×165 W idle floor: caps bottom out, domain stays hot.
	cp, err := New(eng, DefaultConfig(), []Domain{{Name: "row", Servers: c.Row(0), BudgetW: 200}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	eng.RunUntil(sim.Time(sim.Second))
	for _, sv := range c.Servers {
		if sv.Speed() != 0.1 {
			t.Errorf("server %d speed %v, want floor 0.1", sv.ID, sv.Speed())
		}
	}
}

func TestRowDomains(t *testing.T) {
	sp := cluster.DefaultSpec()
	sp.Rows, sp.RacksPerRow, sp.ServersPerRack = 3, 1, 2
	sp.NoiseSigmaW = 0
	c, err := cluster.New(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := RowDomains(c, []float64{1000, 0, 2000})
	if len(ds) != 2 {
		t.Fatalf("got %d domains, want 2 (row 1 uncontrolled)", len(ds))
	}
	if ds[0].Name != "row/0" || ds[1].Name != "row/2" {
		t.Errorf("domain names %q, %q", ds[0].Name, ds[1].Name)
	}
	if len(ds[0].Servers) != 2 {
		t.Errorf("domain has %d servers", len(ds[0].Servers))
	}
}

func TestStartStopIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1)
	cp, err := New(eng, DefaultConfig(), []Domain{{Name: "row", Servers: c.Row(0), BudgetW: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	cp.Start()
	eng.RunUntil(sim.Time(2 * sim.Second))
	if got := cp.Stats(0).Intervals; got != 3 {
		t.Errorf("intervals = %d, want 3 (double Start must not double-tick)", got)
	}
	cp.Stop()
	cp.Stop()
	eng.RunUntil(sim.Time(4 * sim.Second))
	if got := cp.Stats(0).Intervals; got != 3 {
		t.Error("capper ticked after Stop")
	}
}

func TestPerServerStaticMode(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2)
	sp := c.Spec
	// Server 0 hot (full), server 1 idle. Budget = 1.8×rated: proportional
	// capping would not throttle at all (total demand 250+150=400 < 450),
	// but static fair-share caps server 0 at 225 W anyway.
	c.Server(0).Allocate(sp.Containers, float64(sp.Containers))
	cfg := DefaultConfig()
	cfg.Mode = PerServerStatic
	cp, err := New(eng, cfg, []Domain{{Name: "row", Servers: c.Row(0), BudgetW: 450}})
	if err != nil {
		t.Fatal(err)
	}
	cp.Start()
	eng.RunUntil(sim.Time(2 * sim.Second))
	if !c.Server(0).Capped() {
		t.Error("hot server not capped at its static share")
	}
	if got := c.Server(0).DrawW(); math.Abs(got-225) > 1e-9 {
		t.Errorf("hot server draws %v, want 225 (share)", got)
	}
	if c.Server(1).Capped() {
		t.Error("idle server capped below its share")
	}
	st := cp.Stats(0)
	if st.CappedServerSamples == 0 || st.CappedIntervals == 0 {
		t.Errorf("stats %+v", st)
	}
	// Demand drops under the share: cap removed.
	c.Server(0).Release(sp.Containers/2, float64(sp.Containers)/2)
	eng.RunUntil(sim.Time(4 * sim.Second))
	if c.Server(0).Capped() {
		t.Error("cap kept after demand fell under share")
	}
}

func TestModeString(t *testing.T) {
	if Proportional.String() != "proportional" || PerServerStatic.String() != "per-server-static" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}
