package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestIncrementalTotalsMatchRecomputeProperty drives the cluster through the
// mutation paths most likely to desynchronize an incremental aggregate —
// freezes, power caps, breaker trips (failures), repairs, utilization churn
// and dropped sweeps — and asserts after every sweep that the monitor's O(1)
// RowPower/RackPower totals and the cluster's rack-indexed RackDrawW are
// exactly (bit-for-bit) equal to a from-scratch recompute over the servers.
func TestIncrementalTotalsMatchRecomputeProperty(t *testing.T) {
	eng := sim.NewEngine()
	sp := cluster.DefaultSpec()
	sp.Rows = 3
	sp.RacksPerRow = 4
	sp.ServersPerRack = 5
	sp.RatedJitterFrac = 0.1 // non-uniform fleets stress the sums harder
	c, err := cluster.New(sp, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SweepDropRate = 0.3 // stale-snapshot path must stay consistent too
	cfg.DropSeed = 42
	m, err := New(eng, c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	now := sim.Time(0)
	for iter := 0; iter < 400; iter++ {
		// Mutate a random server through one of the paths under test.
		sv := c.Servers[rng.Intn(len(c.Servers))]
		switch rng.Intn(6) {
		case 0:
			sv.SetFrozen(!sv.Frozen())
		case 1: // power cap at a random level between idle/2 and rated
			sv.ApplyCap(sv.IdleW()/2 + rng.Float64()*sv.RatedW())
		case 2:
			if sv.Capped() {
				sv.RemoveCap()
			}
		case 3: // breaker trip / repair
			sv.SetFailed(!sv.Failed())
		case 4: // utilization churn
			if n := sv.FreeContainers(); n > 0 {
				k := 1 + rng.Intn(n)
				sv.Allocate(k, float64(k)*rng.Float64())
			}
		case 5:
			if n := sv.Busy(); n > 0 {
				sv.Release(n, 0)
			}
		}

		now = now.Add(sim.Minute)
		m.Sweep(now) // may be dropped: totals must then match the stale snapshot

		if !m.haveSample {
			continue
		}
		for r := 0; r < c.Rows(); r++ {
			var rowSum float64
			for _, s := range c.Row(r) {
				p, ok := m.ServerPower(s.ID)
				if !ok {
					t.Fatalf("iter %d: no sample for server %d", iter, s.ID)
				}
				rowSum += p
			}
			got, ok := m.RowPower(r)
			if !ok || got != rowSum {
				t.Fatalf("iter %d row %d: RowPower = %v, recompute = %v", iter, r, got, rowSum)
			}
			for k := 0; k < sp.RacksPerRow; k++ {
				var rackSum float64
				for _, s := range c.Rack(r, k) {
					p, _ := m.ServerPower(s.ID)
					rackSum += p
				}
				if got, ok := m.RackPower(r, k); !ok || got != rackSum {
					t.Fatalf("iter %d rack %d/%d: RackPower = %v, recompute = %v", iter, r, k, got, rackSum)
				}

				// RackDrawW via the rack-major index vs the historical
				// filtered row scan, in the same iteration order.
				var scan float64
				for _, s := range c.Row(r) {
					if s.Rack == k {
						scan += s.DrawW()
					}
				}
				if got := c.RackDrawW(r, k); got != scan {
					t.Fatalf("iter %d rack %d/%d: RackDrawW = %v, scan = %v", iter, r, k, got, scan)
				}
			}
		}
	}
	if m.Dropped() == 0 {
		t.Error("drop injection never fired; property did not cover dropped sweeps")
	}
}

// TestSweepAndReadsDoNotAllocate pins the scale contract: with history
// disabled, a sweep performs no allocations at all — in particular none of
// the per-rack scratch buffers or fmt.Sprintf series names the historical
// implementation produced per sweep — and the O(1) RowPower/RackPower reads
// are allocation-free.
func TestSweepAndReadsDoNotAllocate(t *testing.T) {
	eng := sim.NewEngine()
	sp := cluster.DefaultSpec()
	sp.Rows = 2
	c, err := cluster.New(sp, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(eng, c, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	if allocs := testing.AllocsPerRun(50, func() {
		now = now.Add(sim.Minute)
		m.Sweep(now)
	}); allocs != 0 {
		t.Errorf("Sweep allocates %.1f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m.RowPower(0)
		m.RowPower(1)
		m.RackPower(1, 3)
	}); allocs != 0 {
		t.Errorf("aggregate reads allocate %.1f objects per run, want 0", allocs)
	}
}
