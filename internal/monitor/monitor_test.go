package monitor

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

func newCluster(t *testing.T, rows, racks, perRack int) *cluster.Cluster {
	t.Helper()
	sp := cluster.DefaultSpec()
	sp.Rows, sp.RacksPerRow, sp.ServersPerRack = rows, racks, perRack
	sp.NoiseSigmaW = 0
	c, err := cluster.New(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 1)
	if _, err := New(eng, c, nil, Config{Interval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestSweepAggregation(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 2, 2, 3)
	db := tsdb.New(0)
	m, err := New(eng, c, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Load one server on row 0 fully.
	c.Server(0).Allocate(c.Spec.Containers, float64(c.Spec.Containers))
	m.Sweep(0)

	idle := c.Spec.IdlePowerW
	rated := c.Spec.RatedPowerW
	wantRow0 := rated + 5*idle
	if got, ok := m.RowPower(0); !ok || math.Abs(got-wantRow0) > 1e-9 {
		t.Errorf("row 0 power %v, want %v", got, wantRow0)
	}
	if got, ok := m.RowPower(1); !ok || math.Abs(got-6*idle) > 1e-9 {
		t.Errorf("row 1 power %v, want %v", got, 6*idle)
	}
	if p, ok := m.ServerPower(0); !ok || math.Abs(p-rated) > 1e-9 {
		t.Errorf("server 0 power %v", p)
	}
	if _, ok := m.ServerPower(-1); ok {
		t.Error("negative server id accepted")
	}
	if _, ok := m.RowPower(5); ok {
		t.Error("out-of-range row accepted")
	}

	// TSDB series.
	if p, ok := db.Latest(SeriesRow(0)); !ok || math.Abs(p.V-wantRow0) > 1e-9 {
		t.Errorf("tsdb row 0 = %+v", p)
	}
	if p, ok := db.Latest(SeriesRack(0, 0)); !ok || math.Abs(p.V-(rated+2*idle)) > 1e-9 {
		t.Errorf("tsdb rack 0/0 = %+v", p)
	}
	if p, ok := db.Latest(SeriesDC); !ok || math.Abs(p.V-(rated+11*idle)) > 1e-9 {
		t.Errorf("tsdb dc = %+v", p)
	}
	// Server series off by default.
	if db.Len(SeriesServer(0)) != 0 {
		t.Error("server series stored without StoreServerSeries")
	}
}

func TestGroupPower(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 4)
	m, err := New(eng, c, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.GroupPower([]cluster.ServerID{0}); ok {
		t.Error("group power available before any sweep")
	}
	c.Server(1).Allocate(c.Spec.Containers, float64(c.Spec.Containers))
	m.Sweep(0)
	got, ok := m.GroupPower([]cluster.ServerID{0, 1})
	want := c.Spec.IdlePowerW + c.Spec.RatedPowerW
	if !ok || math.Abs(got-want) > 1e-9 {
		t.Errorf("group power %v, want %v", got, want)
	}
	if _, ok := m.GroupPower([]cluster.ServerID{99}); ok {
		t.Error("unknown member accepted")
	}
}

func TestPeriodicSampling(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 2)
	db := tsdb.New(0)
	m, err := New(eng, c, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sampleTimes []sim.Time
	m.OnSample(func(now sim.Time) { sampleTimes = append(sampleTimes, now) })
	m.Start()
	m.Start() // idempotent
	if err := eng.RunUntil(sim.Time(5 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	if m.Sweeps() != 6 { // t = 0..5 inclusive
		t.Errorf("sweeps = %d, want 6", m.Sweeps())
	}
	if len(sampleTimes) != 6 || sampleTimes[1] != sim.Time(sim.Minute) {
		t.Errorf("sample times = %v", sampleTimes)
	}
	if db.Len(SeriesRow(0)) != 6 {
		t.Errorf("row series has %d points", db.Len(SeriesRow(0)))
	}
	m.Stop()
	if err := eng.RunUntil(sim.Time(10 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	if m.Sweeps() != 6 {
		t.Error("monitor kept sweeping after Stop")
	}
	if ts, ok := m.LastSampleTime(); !ok || ts != sim.Time(5*sim.Minute) {
		t.Errorf("LastSampleTime = %v, %v", ts, ok)
	}
}

func TestStoreServerSeries(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 2)
	db := tsdb.New(0)
	cfg := DefaultConfig()
	cfg.StoreServerSeries = true
	m, err := New(eng, c, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Sweep(0)
	if db.Len(SeriesServer(0)) != 1 || db.Len(SeriesServer(1)) != 1 {
		t.Error("server series missing")
	}
}

// A restarted monitor (fresh instance over the same TSDB) recovers: the
// paper's monitor is stateless by design.
func TestMonitorStatelessRestart(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 2)
	db := tsdb.New(0)
	m1, err := New(eng, c, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	if err := eng.RunUntil(sim.Time(3 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	m1.Stop()

	// "Crash": a new monitor instance resumes against the same DB.
	m2, err := New(eng, c, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	if err := eng.RunUntil(sim.Time(6 * sim.Minute)); err != nil {
		t.Fatal(err)
	}
	// Series continuity: samples at minutes 0..3 from m1, 3..6 from m2
	// (minute 3 sampled twice, which the TSDB permits).
	if got := db.Len(SeriesRow(0)); got != 8 {
		t.Errorf("row series has %d points after restart, want 8", got)
	}
	if p, ok := m2.RowPower(0); !ok || p <= 0 {
		t.Errorf("restarted monitor snapshot: %v %v", p, ok)
	}
}

func TestSweepDropInjection(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 2)
	cfg := DefaultConfig()
	cfg.SweepDropRate = 0.3
	cfg.DropSeed = 5
	m, err := New(eng, c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := eng.RunUntil(sim.Time(10 * sim.Hour)); err != nil {
		t.Fatal(err)
	}
	total := m.Sweeps() + m.Dropped()
	if total != 601 {
		t.Fatalf("sweeps+dropped = %d, want 601", total)
	}
	frac := float64(m.Dropped()) / float64(total)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("dropped fraction %.3f, want ≈0.30", frac)
	}
	// Snapshot survives drops: the last successful sweep stays readable.
	if _, ok := m.RowPower(0); !ok {
		t.Error("no snapshot despite many successful sweeps")
	}
	// Rate 1 is invalid (every sweep dropped forever).
	cfg.SweepDropRate = 1
	if _, err := New(eng, c, nil, cfg); err == nil {
		t.Error("drop rate 1 accepted")
	}
	cfg.SweepDropRate = -0.1
	if _, err := New(eng, c, nil, cfg); err == nil {
		t.Error("negative drop rate accepted")
	}
}
