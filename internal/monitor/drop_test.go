package monitor

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestDropKeepsLastKnownGoodSnapshot walks sweeps manually and checks every
// dropped one leaves the snapshot — values and timestamp — exactly at the
// last successful sweep, even while the underlying cluster's power moves.
func TestDropKeepsLastKnownGoodSnapshot(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 4)
	cfg := DefaultConfig()
	cfg.SweepDropRate = 0.5
	cfg.DropSeed = 11
	m, err := New(eng, c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	drops, updates := 0, 0
	var prevPower float64
	var prevTime sim.Time
	for i := 1; i <= 40; i++ {
		// Shift real power every minute so a stale snapshot is detectable.
		if i%2 == 1 {
			c.Server(0).Allocate(1, 1)
		} else {
			c.Server(0).Release(1, 1)
		}
		now := sim.Time(i) * sim.Time(sim.Minute)
		before := m.Dropped()
		m.Sweep(now)
		got, ok := m.RowPower(0)
		at, _ := m.LastSampleTime()
		if m.Dropped() > before {
			if updates == 0 {
				// Dropped before anything succeeded: nothing to hold on to.
				continue
			}
			drops++
			if !ok || got != prevPower || at != prevTime {
				t.Fatalf("sweep %d dropped but snapshot moved: power %v→%v, time %v→%v",
					i, prevPower, got, prevTime, at)
			}
			continue
		}
		updates++
		if at != now {
			t.Fatalf("successful sweep %d kept old timestamp %v", i, at)
		}
		prevPower, prevTime = got, at
	}
	if drops == 0 || updates == 0 {
		t.Fatalf("seed exercised drops=%d updates=%d; need both", drops, updates)
	}
}

// rejectingStore refuses every append, simulating a TSDB outage.
type rejectingStore struct{ rejects int }

func (s *rejectingStore) Append(string, sim.Time, float64) error {
	s.rejects++
	return errStoreDown
}

var errStoreDown = fmt.Errorf("store down")

// TestStoreRejectionDoesNotStopSampling: history is best-effort — a TSDB
// that rejects every write costs the points, not the live snapshot.
func TestStoreRejectionDoesNotStopSampling(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 4)
	m, err := New(eng, c, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := &rejectingStore{}
	m.SetStore(st)

	m.Sweep(sim.Time(sim.Minute))
	if m.Sweeps() != 1 {
		t.Fatalf("sweep did not complete: %d", m.Sweeps())
	}
	if _, ok := m.RowPower(0); !ok {
		t.Fatal("snapshot unreadable after store rejection")
	}
	if st.rejects == 0 {
		t.Fatal("store saw no writes")
	}
	if got := m.WriteErrors(); got != int64(st.rejects) {
		t.Fatalf("WriteErrors = %d, store rejected %d", got, st.rejects)
	}
}

// nopAPI satisfies core.FreezeAPI for controller wiring.
type nopAPI struct{}

func (nopAPI) Freeze(cluster.ServerID) error   { return nil }
func (nopAPI) Unfreeze(cluster.ServerID) error { return nil }

// TestSkippedNoDataOnlyBeforeFirstSweep pins the documented failure mode of
// SweepDropRate: the controller's SkippedNoData path fires only while no
// sweep has ever succeeded. Once a snapshot exists, dropped sweeps surface
// as staleness — counted by the resilient controller, invisible to the
// naive one — never as missing data.
func TestSkippedNoDataOnlyBeforeFirstSweep(t *testing.T) {
	eng := sim.NewEngine()
	c := newCluster(t, 1, 1, 4)
	cfg := DefaultConfig()
	cfg.SweepDropRate = 0.5
	cfg.DropSeed = 11
	m, err := New(eng, c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var allIDs []cluster.ServerID
	for _, sv := range c.Row(0) {
		allIDs = append(allIDs, sv.ID)
	}
	newCtl := func(disabled bool) *core.Controller {
		ccfg := core.DefaultConfig()
		ccfg.Resilience.Disabled = disabled
		ctl, err := core.New(eng, m, nopAPI{}, ccfg,
			[]core.Domain{{Name: "row", Servers: allIDs, BudgetW: 1e6}})
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	naive, resilient := newCtl(true), newCtl(false)

	// Before the first successful sweep: both controllers skip.
	naive.Step(0)
	resilient.Step(0)
	if naive.Stats(0).SkippedNoData != 1 || resilient.Stats(0).SkippedNoData != 1 {
		t.Fatalf("pre-sweep tick must skip: naive %+v resilient %+v",
			naive.Stats(0), resilient.Stats(0))
	}

	// Sweep until the first one survives the drop injection.
	now := sim.Time(0)
	for m.Sweeps() == 0 {
		now = now.Add(sim.Minute)
		m.Sweep(now)
	}

	// From here on, dropped sweeps must never re-trigger SkippedNoData.
	droppedSeen := false
	for i := 0; i < 30; i++ {
		now = now.Add(sim.Minute)
		before := m.Dropped()
		m.Sweep(now)
		naive.Step(now)
		resilient.Step(now)
		if m.Dropped() > before {
			droppedSeen = true
		}
	}
	if !droppedSeen {
		t.Fatal("seed produced no drops after the first success; test proves nothing")
	}
	if got := naive.Stats(0).SkippedNoData; got != 1 {
		t.Errorf("naive SkippedNoData = %d after first sweep, want 1", got)
	}
	if got := resilient.Stats(0).SkippedNoData; got != 1 {
		t.Errorf("resilient SkippedNoData = %d after first sweep, want 1", got)
	}
	// The resilient controller sees those drops as staleness instead.
	if got := resilient.Stats(0).StaleTicks; got == 0 {
		t.Error("resilient controller counted no stale ticks despite dropped sweeps")
	}
	if got := naive.Stats(0).StaleTicks; got != 0 {
		t.Errorf("naive controller counted %d stale ticks with resilience off", got)
	}
}
