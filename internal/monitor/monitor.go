// Package monitor implements the paper's power monitor (§3.3): it samples
// every server's power once per minute (the paper's IPMI path), aggregates
// to rack, row and data-center level, and stores the history in the
// time-series database. Like the paper's monitor it is stateless — all
// history lives in the TSDB, and the latest per-server snapshot can be
// rebuilt by re-sampling.
package monitor

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

// Series naming scheme used in the TSDB.
const (
	SeriesDC = "dc"
)

// SeriesRow returns the TSDB series name for row r.
func SeriesRow(r int) string { return fmt.Sprintf("row/%d", r) }

// SeriesRack returns the TSDB series name for rack k on row r.
func SeriesRack(r, k int) string { return fmt.Sprintf("rack/%d/%d", r, k) }

// SeriesServer returns the TSDB series name for a server.
func SeriesServer(id cluster.ServerID) string { return fmt.Sprintf("server/%d", id) }

// Config controls sampling.
type Config struct {
	// Interval between sampling sweeps. The paper samples every minute, "a
	// good tradeoff between measurement accuracy and monitoring overhead".
	Interval sim.Duration
	// StoreServerSeries also records one TSDB series per server. Off by
	// default: at data-center scale the per-server history dominates memory
	// and only the latest snapshot is needed by the controller.
	StoreServerSeries bool
	// SweepDropRate injects monitoring failures: each sweep is skipped
	// entirely with this probability (an IPMI/collector outage for that
	// minute). Consumers observe it as a stale snapshot — the controller's
	// SkippedNoData path only triggers before the first successful sweep,
	// so the realistic failure mode is staleness, which RHC absorbs.
	SweepDropRate float64
	// DropSeed seeds the failure-injection stream.
	DropSeed uint64
}

// DefaultConfig returns the paper's 1-minute sampling.
func DefaultConfig() Config { return Config{Interval: sim.Minute} }

// Store is the monitor's view of the time-series database: an append-only
// sink for samples. tsdb.DB satisfies it; fault injectors wrap it to make
// the write path fail.
type Store interface {
	Append(name string, t sim.Time, v float64) error
}

// Monitor samples a cluster into a TSDB and keeps a latest-value snapshot.
type Monitor struct {
	eng *sim.Engine
	c   *cluster.Cluster
	cfg Config

	store       Store
	writeErrors int64

	lastServer []float64 // latest sample per server
	// lastRow[r] / lastRack[r*RacksPerRow+k] are the aggregates of the latest
	// sweep, maintained while sweeping so RowPower/RackPower reads are O(1)
	// instead of re-summing the row on every controller tick.
	lastRow    []float64
	lastRack   []float64
	lastTime   sim.Time
	haveSample bool
	sweeps     int64
	dropped    int64
	dropRNG    *rand.Rand

	// rowNames/rackNames/serverNames are the TSDB series names, precomputed
	// at construction: Sweep must not fmt.Sprintf per rack per minute at
	// 100k-server scale. serverNames stays nil unless StoreServerSeries.
	rowNames    []string
	rackNames   []string
	serverNames []string

	handle   *sim.Handle
	onSample []func(now sim.Time)
	met      *metrics
}

// metrics is the monitor's optional observability wiring: atomic counters
// incremented on the sweep path, so scrapes from another goroutine never
// race the simulation.
type metrics struct {
	sweeps      *obs.Counter
	dropped     *obs.Counter
	samples     *obs.Counter
	writeErrors *obs.Counter
	sweepDur    *obs.Histogram
}

// Instrument registers the monitor's metrics on reg (nil is a no-op):
//
//	monitor_sweeps_total               counter
//	monitor_sweeps_dropped_total       counter
//	monitor_samples_ingested_total     counter
//	monitor_store_write_errors_total   counter
//	monitor_sweep_duration_seconds     summary
//
// Call before Start.
func (m *Monitor) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.met = &metrics{
		sweeps:      reg.Counter("monitor_sweeps_total", "Completed sampling sweeps."),
		dropped:     reg.Counter("monitor_sweeps_dropped_total", "Sweeps lost to injected collector outages."),
		samples:     reg.Counter("monitor_samples_ingested_total", "Per-server power samples taken."),
		writeErrors: reg.Counter("monitor_store_write_errors_total", "TSDB writes rejected by the store."),
		sweepDur: reg.Histogram("monitor_sweep_duration_seconds",
			"Wall-clock duration of one sampling sweep.", 1e-7, 10, 400),
	}
}

// New builds a monitor. db may be nil, in which case only the in-memory
// snapshot is maintained (used by lightweight tests).
func New(eng *sim.Engine, c *cluster.Cluster, db *tsdb.DB, cfg Config) (*Monitor, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("monitor: non-positive interval %v", cfg.Interval)
	}
	if cfg.SweepDropRate < 0 || cfg.SweepDropRate >= 1 {
		return nil, fmt.Errorf("monitor: sweep drop rate %v outside [0, 1)", cfg.SweepDropRate)
	}
	m := &Monitor{
		eng:        eng,
		c:          c,
		cfg:        cfg,
		lastServer: make([]float64, len(c.Servers)),
		lastRow:    make([]float64, c.Rows()),
		lastRack:   make([]float64, c.Rows()*c.Spec.RacksPerRow),
		rowNames:   make([]string, c.Rows()),
		rackNames:  make([]string, c.Rows()*c.Spec.RacksPerRow),
	}
	for r := 0; r < c.Rows(); r++ {
		m.rowNames[r] = SeriesRow(r)
		for k := 0; k < c.Spec.RacksPerRow; k++ {
			m.rackNames[r*c.Spec.RacksPerRow+k] = SeriesRack(r, k)
		}
	}
	if cfg.StoreServerSeries {
		m.serverNames = make([]string, len(c.Servers))
		for i := range c.Servers {
			m.serverNames[i] = SeriesServer(cluster.ServerID(i))
		}
	}
	if db != nil {
		m.store = db
	}
	if cfg.SweepDropRate > 0 {
		m.dropRNG = sim.SubRNG(cfg.DropSeed, "monitor-drops")
	}
	return m, nil
}

// SetStore replaces the monitor's TSDB sink. Chaos tests interpose a
// failing store here; passing nil disables history entirely. Call before
// Start.
func (m *Monitor) SetStore(s Store) { m.store = s }

// Start begins periodic sampling, with the first sweep at the current time.
// Start the monitor before any component that consumes its samples in the
// same interval, so sweeps always precede consumers deterministically.
func (m *Monitor) Start() {
	if m.handle != nil {
		return
	}
	m.handle = m.eng.Every(m.eng.Now(), m.cfg.Interval, "power-monitor", m.Sweep)
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	if m.handle != nil {
		m.handle.Cancel()
		m.handle = nil
	}
}

// OnSample registers a callback invoked after every sweep. Experiment
// harnesses use it to record group-level metrics at monitor resolution.
func (m *Monitor) OnSample(fn func(now sim.Time)) { m.onSample = append(m.onSample, fn) }

// Sweep performs one sampling pass immediately. It is normally driven by
// Start's periodic event but is exported so tests and restarted monitors can
// force a sample.
func (m *Monitor) Sweep(now sim.Time) {
	if m.dropRNG != nil && m.dropRNG.Float64() < m.cfg.SweepDropRate {
		m.dropped++
		if m.met != nil {
			m.met.dropped.Inc()
		}
		return
	}
	var start time.Time
	if m.met != nil {
		start = time.Now()
	}
	spec := m.c.Spec
	dcTotal := 0.0
	for r := 0; r < m.c.Rows(); r++ {
		rowTotal := 0.0
		// Accumulate rack totals directly into the retained lastRack
		// segment — the per-sweep scratch buffer the old code allocated.
		rackTotals := m.lastRack[r*spec.RacksPerRow : (r+1)*spec.RacksPerRow]
		for k := range rackTotals {
			rackTotals[k] = 0
		}
		for _, sv := range m.c.Row(r) {
			p := sv.SamplePower()
			m.lastServer[sv.ID] = p
			rowTotal += p
			rackTotals[sv.Rack] += p
			if m.store != nil && m.cfg.StoreServerSeries {
				m.append(m.serverNames[sv.ID], now, p)
			}
		}
		m.lastRow[r] = rowTotal
		dcTotal += rowTotal
		if m.store != nil {
			m.append(m.rowNames[r], now, rowTotal)
			for k, v := range rackTotals {
				m.append(m.rackNames[r*spec.RacksPerRow+k], now, v)
			}
		}
	}
	if m.store != nil {
		m.append(SeriesDC, now, dcTotal)
	}
	m.lastTime = now
	m.haveSample = true
	m.sweeps++
	if m.met != nil {
		m.met.sweeps.Inc()
		m.met.samples.Add(int64(len(m.c.Servers)))
		m.met.sweepDur.Observe(time.Since(start).Seconds())
	}
	for _, fn := range m.onSample {
		fn(now)
	}
}

// append writes one sample to the store. History is best-effort: a
// rejected write loses that point but must not take down sampling — the
// controller consumes the in-memory snapshot, which is already updated.
func (m *Monitor) append(name string, t sim.Time, v float64) {
	if err := m.store.Append(name, t, v); err != nil {
		m.writeErrors++
		if m.met != nil {
			m.met.writeErrors.Inc()
		}
	}
}

// Sweeps returns the number of completed sampling passes.
func (m *Monitor) Sweeps() int64 { return m.sweeps }

// Dropped returns the number of sweeps lost to injected failures.
func (m *Monitor) Dropped() int64 { return m.dropped }

// WriteErrors returns the number of TSDB writes the store rejected.
func (m *Monitor) WriteErrors() int64 { return m.writeErrors }

// ServerPower returns the latest sampled power of one server.
func (m *Monitor) ServerPower(id cluster.ServerID) (float64, bool) {
	if !m.haveSample || int(id) < 0 || int(id) >= len(m.lastServer) {
		return 0, false
	}
	return m.lastServer[id], true
}

// RowPower returns the latest sampled total power of row r. The total is
// maintained during Sweep (same per-server addition order as the historical
// re-sum, so the value is bit-identical), making the read O(1) — it sits on
// the controller's per-tick hot path.
func (m *Monitor) RowPower(r int) (float64, bool) {
	if !m.haveSample || r < 0 || r >= m.c.Rows() {
		return 0, false
	}
	return m.lastRow[r], true
}

// RackPower returns the latest sampled total power of rack k on row r, O(1).
func (m *Monitor) RackPower(r, k int) (float64, bool) {
	if !m.haveSample || r < 0 || r >= m.c.Rows() || k < 0 || k >= m.c.Spec.RacksPerRow {
		return 0, false
	}
	return m.lastRack[r*m.c.Spec.RacksPerRow+k], true
}

// GroupPower returns the latest sampled total power of an arbitrary server
// set — the controlled experiments' virtual groups (§4.1.2).
func (m *Monitor) GroupPower(ids []cluster.ServerID) (float64, bool) {
	if !m.haveSample {
		return 0, false
	}
	total := 0.0
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(m.lastServer) {
			return 0, false
		}
		total += m.lastServer[id]
	}
	return total, true
}

// PowerSnapshot exposes the latest per-server sample slice, indexed by
// ServerID — core.SnapshotPowerReader's fast path behind the controller's
// per-tick ranking refresh. The slice is owned by the monitor and mutated
// only during Sweep; callers must treat it as read-only and not retain it
// across sweeps.
func (m *Monitor) PowerSnapshot() ([]float64, bool) {
	return m.lastServer, m.haveSample
}

// RangePower returns the latest total power of the contiguous server-ID
// range [lo, hi], satisfying core.RangePowerReader: the result is
// bit-identical to GroupPower over the ascending ID slice. Row- and
// rack-aligned ranges are served O(1) from the aggregates maintained during
// Sweep, which accumulates them in the same ascending per-server order as a
// re-sum (rows are contiguous ID ranges and racks contiguous sub-ranges, see
// cluster.New's layout); anything else is summed directly from the snapshot.
func (m *Monitor) RangePower(lo, hi cluster.ServerID) (float64, bool) {
	if !m.haveSample || lo < 0 || hi < lo || int(hi) >= len(m.lastServer) {
		return 0, false
	}
	perRack := m.c.Spec.ServersPerRack
	perRow := m.c.Spec.RacksPerRow * perRack
	n := int(hi-lo) + 1
	if n == perRow && int(lo)%perRow == 0 {
		return m.lastRow[int(lo)/perRow], true
	}
	if n == perRack && int(lo)%perRack == 0 {
		return m.lastRack[int(lo)/perRack], true
	}
	total := 0.0
	for _, v := range m.lastServer[lo : hi+1] {
		total += v
	}
	return total, true
}

// LastSampleTime returns the time of the latest sweep.
func (m *Monitor) LastSampleTime() (sim.Time, bool) { return m.lastTime, m.haveSample }

// GroupSampleTime returns the time the latest snapshot of the group was
// taken. Sweeps sample the whole cluster at once, so every group shares the
// sweep time; it satisfies core.TimedPowerReader so the controller can tell
// a fresh sample from a snapshot left stale by dropped sweeps.
func (m *Monitor) GroupSampleTime([]cluster.ServerID) (sim.Time, bool) {
	return m.lastTime, m.haveSample
}
