package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

func TestLogHistogramValidation(t *testing.T) {
	if _, err := NewLogHistogram(0, 10, 10); err == nil {
		t.Error("min=0 accepted")
	}
	if _, err := NewLogHistogram(10, 10, 10); err == nil {
		t.Error("min=max accepted")
	}
	if _, err := NewLogHistogram(1, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestLogHistogramQuantileAccuracy(t *testing.T) {
	h, err := NewLogHistogram(1, 1e7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(5)
	n := 100000
	vals := make([]float64, n)
	for i := range vals {
		v := math.Exp(r.NormFloat64()*1.2 + 5) // lognormal around e^5 ≈ 148
		vals[i] = v
		h.Add(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := vals[int(q*float64(n-1))]
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Errorf("q%.3f: got %v want %v (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Count() != int64(n) {
		t.Errorf("Count = %d", h.Count())
	}
	// Mean within a few percent.
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if rel := math.Abs(h.Mean()-sum/float64(n)) / (sum / float64(n)); rel > 0.03 {
		t.Errorf("Mean rel err %.3f", rel)
	}
}

func TestLogHistogramEdgeValues(t *testing.T) {
	h, err := NewLogHistogram(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-5)         // ignored
	h.Add(0)          // ignored
	h.Add(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Fatalf("invalid values counted: %d", h.Count())
	}
	h.Add(0.5)  // underflow clamps to min
	h.Add(1000) // overflow clamps to max
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want clamp to min", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want clamp to max", got)
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h, err := NewLogHistogram(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Error("empty histogram should answer NaN")
	}
}
