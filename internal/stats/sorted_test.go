package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// Property: inserting a random sequence one element at a time yields exactly
// the sorted slice, and every percentile read off the incrementally
// maintained slice equals Percentile over the raw data bit-for-bit (the
// HourlyEt rewrite depends on this equivalence).
func TestSortedInsertMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		raw := make([]float64, 0, n)
		var inc []float64
		for i := 0; i < n; i++ {
			// Coarse quantization forces plenty of duplicates.
			v := float64(rng.Intn(40))/8 - 2
			raw = append(raw, v)
			inc = SortedInsert(inc, v)
		}
		want := append([]float64(nil), raw...)
		sort.Float64s(want)
		if len(inc) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(inc), len(want))
		}
		for i := range want {
			if inc[i] != want[i] {
				t.Fatalf("trial %d: inc[%d]=%v, want %v", trial, i, inc[i], want[i])
			}
		}
		for _, p := range []float64{0, 10, 50, 90, 99.5, 100} {
			if got, want := PercentileSorted(inc, p), Percentile(raw, p); got != want {
				t.Fatalf("trial %d: p%v = %v via incremental, %v via full sort", trial, p, got, want)
			}
		}
	}
}

// Property: random interleaved inserts and removes track a reference
// multiset; removes of absent values report false and leave the slice alone.
func TestSortedRemoveTracksMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var inc []float64
	counts := map[float64]int{}
	for step := 0; step < 2000; step++ {
		v := float64(rng.Intn(12))
		if rng.Intn(2) == 0 {
			inc = SortedInsert(inc, v)
			counts[v]++
			continue
		}
		var ok bool
		inc, ok = SortedRemove(inc, v)
		if ok != (counts[v] > 0) {
			t.Fatalf("step %d: remove(%v) ok=%v with count %d", step, v, ok, counts[v])
		}
		if ok {
			counts[v]--
		}
	}
	total := 0
	for v, n := range counts {
		total += n
		lo := sort.SearchFloat64s(inc, v)
		hi := sort.SearchFloat64s(inc, v+0.5)
		if hi-lo != n {
			t.Fatalf("value %v appears %d times, want %d", v, hi-lo, n)
		}
	}
	if len(inc) != total {
		t.Fatalf("len %d, want %d", len(inc), total)
	}
	if !sort.Float64sAreSorted(inc) {
		t.Fatal("slice lost its ordering")
	}
}
