// Package stats provides the statistical primitives the reproduction relies
// on: empirical distributions and percentiles, streaming summaries, Pearson
// correlation, ordinary least squares, and an AR(1) noise process used by the
// power and workload models.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, mean, min, max and variance of a stream using
// Welford's algorithm. The zero value is ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add incorporates x into the summary. NaN values are ignored (they occur in
// failure-injection tests where the monitor emits bad samples).
func (s *Summary) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// N returns the number of accumulated samples.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// String formats the summary for experiment reports.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f min=%.4f max=%.4f sd=%.4f",
		s.n, s.Mean(), s.Min(), s.Max(), s.StdDev())
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data already sorted ascending.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDFPoint is one point of an empirical CDF: P(X ≤ Value) = Frac.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical cumulative distribution of xs evaluated at up to
// maxPoints evenly spaced ranks (all points when maxPoints ≤ 0 or exceeds the
// sample size). The result is suitable for printing a figure series.
func CDF(xs []float64, maxPoints int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints // 1-based rank
		pts = append(pts, CDFPoint{Value: sorted[idx-1], Frac: float64(idx) / float64(n)})
	}
	return pts
}

// CDFAt returns the empirical P(X ≤ v) for the sample xs.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := 0
	for _, x := range xs {
		if x <= v {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
// It returns an error when the lengths differ, fewer than two pairs exist, or
// either series has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series lengths differ: %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return 0, errors.New("stats: need at least two pairs for correlation")
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit holds the result of an ordinary-least-squares line fit.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// FitLine fits y = Slope·x + Intercept by OLS.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: series lengths differ: %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least two points to fit a line")
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: x has zero variance")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx, N: n}
	if syy > 0 {
		var ssRes float64
		for i := 0; i < n; i++ {
			r := ys[i] - (fit.Intercept + slope*xs[i])
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// FitLineThroughOrigin fits y = Slope·x (no intercept), the form the paper
// uses for f(u) = kr·u.
func FitLineThroughOrigin(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: series lengths differ: %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return LinearFit{}, errors.New("stats: empty series")
	}
	var sxy, sxx, syy, sy float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
		sy += ys[i]
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: x has zero norm")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, N: len(xs)}
	my := sy / float64(len(xs))
	var ssRes float64
	for i := range xs {
		r := ys[i] - slope*xs[i]
		ssRes += r * r
		d := ys[i] - my
		syy += d * d
	}
	if syy > 0 {
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// Diffs returns the first-order differences xs[i+1] − xs[i].
func Diffs(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// WindowMax reduces xs to the maximum of each consecutive window of size w,
// as in the paper's Fig 9 procedure ("a sequence of the maximum power for
// every k minutes"). Partial trailing windows are dropped.
func WindowMax(xs []float64, w int) []float64 {
	if w <= 0 {
		return nil
	}
	out := make([]float64, 0, len(xs)/w)
	for i := 0; i+w <= len(xs); i += w {
		m := xs[i]
		for _, v := range xs[i+1 : i+w] {
			if v > m {
				m = v
			}
		}
		out = append(out, m)
	}
	return out
}
