package stats

import (
	"math"
	"math/rand"
)

// AR1 is a first-order autoregressive Gaussian process:
//
//	x[t] = phi·x[t−1] + e[t],  e ~ N(0, sigma²·(1−phi²))
//
// scaled so its stationary standard deviation is sigma. Both the power model
// (measurement noise) and the workload model (minute-scale load wobble) use
// AR(1) processes because the paper's 1-minute power deltas are small and
// positively correlated (Fig 9).
type AR1 struct {
	Phi   float64
	Sigma float64
	x     float64
	rng   *rand.Rand
}

// NewAR1 returns an AR(1) process with autocorrelation phi in (−1, 1) and
// stationary standard deviation sigma, started at its stationary mean 0.
func NewAR1(phi, sigma float64, rng *rand.Rand) *AR1 {
	if phi <= -1 || phi >= 1 {
		panic("stats: AR1 phi must be in (-1, 1)")
	}
	return &AR1{Phi: phi, Sigma: sigma, rng: rng}
}

// Next advances the process one step and returns the new value.
func (a *AR1) Next() float64 {
	innov := a.Sigma * math.Sqrt(1-a.Phi*a.Phi) * a.rng.NormFloat64()
	a.x = a.Phi*a.x + innov
	return a.x
}

// Value returns the current value without advancing.
func (a *AR1) Value() float64 { return a.x }
