package stats

import (
	"fmt"
	"math"
)

// LogHistogram accumulates positive values into logarithmically spaced
// buckets and answers quantile queries with bounded relative error. The
// interactive-service substrate records millions of request latencies into
// one; storing them individually for a p99.9 query would dominate memory.
type LogHistogram struct {
	min, max float64
	logMin   float64
	scale    float64 // buckets per unit of ln(v)
	counts   []int64
	n        int64
	sum      float64 // exact sum of recorded values (not bucket-quantized)
	under    int64   // values below min (counted at min)
	over     int64   // values above max (counted at max)
}

// NewLogHistogram covers [min, max] with the given number of buckets;
// min must be positive and less than max.
func NewLogHistogram(min, max float64, buckets int) (*LogHistogram, error) {
	if min <= 0 || max <= min {
		return nil, fmt.Errorf("stats: log histogram range [%v, %v] invalid", min, max)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("stats: log histogram needs at least one bucket, got %d", buckets)
	}
	return &LogHistogram{
		min:    min,
		max:    max,
		logMin: math.Log(min),
		scale:  float64(buckets) / (math.Log(max) - math.Log(min)),
		counts: make([]int64, buckets),
	}, nil
}

// Add records one value. Non-positive and NaN values are ignored; values
// outside the range clamp to the edge buckets.
func (h *LogHistogram) Add(v float64) {
	if math.IsNaN(v) || v <= 0 {
		return
	}
	h.n++
	h.sum += v
	switch {
	case v < h.min:
		h.under++
	case v >= h.max:
		h.over++
	default:
		i := int((math.Log(v) - h.logMin) * h.scale)
		if i < 0 {
			i = 0
		}
		if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Merge adds o's recorded population into h. Both histograms must share the
// same range and bucket count; the service substrate keeps one histogram per
// client class × operation and merges on read to answer aggregate quantiles.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if o == nil {
		return nil
	}
	if h.min != o.min || h.max != o.max || len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging log histograms with different layouts ([%v,%v]×%d vs [%v,%v]×%d)",
			h.min, h.max, len(h.counts), o.min, o.max, len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	h.under += o.under
	h.over += o.over
	return nil
}

// Count returns the number of recorded values.
func (h *LogHistogram) Count() int64 { return h.n }

// Sum returns the exact sum of the recorded values (unlike Mean, which is
// quantized to bucket midpoints). Metric exposition needs it for the
// Prometheus summary `_sum` line.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Quantile returns an estimate of the q-th quantile (q in [0, 1]): the
// geometric midpoint of the bucket containing the target rank.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.n-1))
	if rank < h.under {
		return h.min
	}
	cum := h.under
	for i, c := range h.counts {
		cum += c
		if rank < cum {
			lo := h.logMin + float64(i)/h.scale
			hi := h.logMin + float64(i+1)/h.scale
			return math.Exp((lo + hi) / 2)
		}
	}
	return h.max
}

// Mean returns the approximate mean using bucket midpoints.
func (h *LogHistogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	sum := float64(h.under) * h.min
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := h.logMin + float64(i)/h.scale
		hi := h.logMin + float64(i+1)/h.scale
		sum += float64(c) * math.Exp((lo+hi)/2)
	}
	sum += float64(h.over) * h.max
	return sum / float64(h.n)
}
