package stats

import "sort"

// SortedInsert inserts v into the ascending-sorted slice xs and returns the
// extended slice (like append, the backing array is reused when capacity
// allows). Equal values keep ascending order; the insertion point is found by
// binary search, so one insert costs O(log n) comparisons plus the copy.
//
// Together with PercentileSorted this gives an incremental percentile: a
// caller that inserts each observation as it arrives reads any percentile in
// O(1) instead of re-sorting the whole sample (what Percentile does). The
// slice must already be sorted; v must not be NaN (NaN breaks binary-search
// ordering — callers filter it first, as the controller's Et estimator does).
func SortedInsert(xs []float64, v float64) []float64 {
	i := sort.SearchFloat64s(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// SortedRemove removes one occurrence of v from the ascending-sorted slice
// xs, returning the shrunk slice and whether v was found. The backing array
// is reused. Like SortedInsert, v must not be NaN.
func SortedRemove(xs []float64, v float64) ([]float64, bool) {
	i := sort.SearchFloat64s(xs, v)
	if i >= len(xs) || xs[i] != v {
		return xs, false
	}
	copy(xs[i:], xs[i+1:])
	return xs[:len(xs)-1], true
}
