package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population sd is 2; unbiased variance = 32/7.
	if v := s.Variance(); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v", v)
	}
}

func TestSummaryIgnoresNaN(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(math.NaN())
	s.Add(3)
	if s.N() != 2 || s.Mean() != 2 {
		t.Errorf("NaN not ignored: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	// Interpolation: p40 of {10,20,30,40,50} lies between 20 and 30.
	if got := Percentile([]float64{10, 20, 30, 40, 50}, 40); math.Abs(got-26) > 1e-9 {
		t.Errorf("interpolated p40 = %v, want 26", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	pts := CDF(xs, 0)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Value != 1 || pts[0].Frac != 0.25 {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[3].Value != 4 || pts[3].Frac != 1 {
		t.Errorf("last point %+v", pts[3])
	}
	// Downsampled CDF still ends at (max, 1).
	pts = CDF(xs, 2)
	if len(pts) != 2 || pts[1].Frac != 1 || pts[1].Value != 4 {
		t.Errorf("downsampled CDF = %+v", pts)
	}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt = %v", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation: r=%v err=%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation: r=%v err=%v", r, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero-variance series not rejected")
	}
}

func TestPearsonIndependentNearZero(t *testing.T) {
	r := sim.NewRNG(3)
	n := 5000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	c, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c) > 0.05 {
		t.Errorf("independent series correlation %v", c)
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 || fit.R2 < 0.999999 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitLineThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2.1, 3.9, 6.1, 8.0}
	fit, err := FitLineThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 0.05 {
		t.Errorf("slope = %v, want ≈2", fit.Slope)
	}
	if _, err := FitLineThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("zero-norm x not rejected")
	}
}

func TestDiffsAndWindowMax(t *testing.T) {
	d := Diffs([]float64{1, 4, 2, 2})
	want := []float64{3, -2, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Diffs = %v", d)
		}
	}
	if Diffs([]float64{1}) != nil {
		t.Error("Diffs of single element should be nil")
	}
	w := WindowMax([]float64{1, 5, 2, 3, 9, 0, 7}, 2) // windows {1,5},{2,3},{9,0}; 7 dropped
	wantW := []float64{5, 3, 9}
	if len(w) != 3 {
		t.Fatalf("WindowMax = %v", w)
	}
	for i := range wantW {
		if w[i] != wantW[i] {
			t.Fatalf("WindowMax = %v", w)
		}
	}
}

func TestAR1Stationarity(t *testing.T) {
	rng := sim.NewRNG(9)
	a := NewAR1(0.7, 2.0, rng)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(a.Next())
	}
	if math.Abs(s.Mean()) > 0.1 {
		t.Errorf("AR1 mean %v, want ≈0", s.Mean())
	}
	if sd := s.StdDev(); math.Abs(sd-2) > 0.1 {
		t.Errorf("AR1 sd %v, want ≈2", sd)
	}
}

func TestAR1Autocorrelation(t *testing.T) {
	rng := sim.NewRNG(10)
	a := NewAR1(0.8, 1.0, rng)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = a.Next()
	}
	r, err := Pearson(xs[:n-1], xs[1:])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.8) > 0.05 {
		t.Errorf("lag-1 autocorrelation %v, want ≈0.8", r)
	}
}

func TestAR1InvalidPhiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("phi=1 did not panic")
		}
	}()
	NewAR1(1.0, 1.0, sim.NewRNG(1))
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v1 <= v2 && v1 >= sorted[0] && v2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDF fractions are non-decreasing and end at exactly 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, mp uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		pts := CDF(xs, int(mp))
		if len(xs) == 0 {
			return pts == nil
		}
		prevF, prevV := 0.0, math.Inf(-1)
		for _, p := range pts {
			if p.Frac < prevF || p.Value < prevV {
				return false
			}
			prevF, prevV = p.Frac, p.Value
		}
		return pts[len(pts)-1].Frac == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
