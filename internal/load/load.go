// Package load is an open-loop wall-clock HTTP load harness for the powermon
// daemon: it fires GET requests at configured Poisson arrival rates against a
// set of endpoint targets and reports tail latencies and error counts per
// target.
//
// Open-loop means arrivals follow an absolute pre-drawn schedule and never
// wait for responses — the defining property of service traffic from millions
// of independent users (each user neither knows nor cares how many requests
// are already in flight). A slow server therefore sees queueing, not a
// politely throttled client: the harness measures the latency the users would
// see, where a closed-loop client would mask it. When the in-flight limit is
// reached, excess arrivals are counted as dropped rather than delayed, so the
// offered rate stays honest.
package load

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

// Target is one endpoint under load.
type Target struct {
	Name string
	URL  string
	// Weight is the target's share of the arrival stream (relative to the
	// other targets' weights; ≤ 0 is rejected).
	Weight float64
}

// Config parameterizes a run.
type Config struct {
	Targets []Target
	// RPS is the aggregate open-loop arrival rate across all targets.
	RPS float64
	// Duration is the length of the arrival schedule.
	Duration time.Duration
	// Timeout bounds each request (default 5 s).
	Timeout time.Duration
	// MaxInFlight bounds concurrent requests (default 512). Arrivals beyond
	// the bound are dropped, not delayed — open loop, not closed.
	MaxInFlight int
	// Seed drives the arrival schedule and target choices.
	Seed uint64
	// Client overrides the HTTP client (tests); Timeout is ignored when set.
	Client *http.Client
}

// TargetResult is one target's outcome.
type TargetResult struct {
	Name    string
	Sent    int64 // requests dispatched
	Done    int64 // responses with status < 400
	Errors  int64 // transport errors, timeouts, status ≥ 400
	Dropped int64 // arrivals shed at the in-flight limit
	// Latency holds response latencies in microseconds for completed
	// requests (success or HTTP error), not dropped or transport-failed ones.
	Latency *stats.LogHistogram
}

// Result is a full run's outcome.
type Result struct {
	// Intended is the number of arrivals the schedule produced; Intended =
	// Σ Sent + Σ Dropped. Being open-loop, it depends only on RPS, Duration
	// and Seed — never on server behaviour.
	Intended int64
	Elapsed  time.Duration
	Targets  []TargetResult
}

// Run executes the load schedule and blocks until every dispatched request
// completes or the context is cancelled.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("load: no targets")
	}
	if !(cfg.RPS > 0) || math.IsInf(cfg.RPS, 0) {
		return nil, fmt.Errorf("load: arrival rate %v must be positive and finite", cfg.RPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: non-positive duration %v", cfg.Duration)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("load: negative in-flight limit %d", cfg.MaxInFlight)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	cum := make([]float64, len(cfg.Targets))
	total := 0.0
	for i, tg := range cfg.Targets {
		if tg.URL == "" {
			return nil, fmt.Errorf("load: target %d (%s) has no URL", i, tg.Name)
		}
		w := tg.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("load: target %d (%s) weight %v invalid", i, tg.Name, tg.Weight)
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("load: all target weights zero")
	}
	for i := range cum {
		cum[i] /= total
	}

	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	res := &Result{Targets: make([]TargetResult, len(cfg.Targets))}
	var mu sync.Mutex // guards res.Targets counters and histograms
	for i, tg := range cfg.Targets {
		h, err := stats.NewLogHistogram(1, 60e6, 2400) // 1 µs … 60 s
		if err != nil {
			return nil, err
		}
		res.Targets[i] = TargetResult{Name: tg.Name, Latency: h}
	}

	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	// The schedule is absolute: the i-th arrival lands at start + Σ gaps,
	// with exponential gaps at 1/RPS mean. Sleeping is relative to that fixed
	// timeline, so a stall never compresses or stretches the offered load,
	// and the arrival count is a pure function of (RPS, Duration, Seed).
	next := start
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.RPS)
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		res.Intended++
		ti := pickTarget(rng, cum)
		select {
		case sem <- struct{}{}:
		default:
			mu.Lock()
			res.Targets[ti].Dropped++
			mu.Unlock()
			continue
		}
		mu.Lock()
		res.Targets[ti].Sent++
		mu.Unlock()
		wg.Add(1)
		go func(ti int, url string) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			ok, responded := doGet(ctx, client, url)
			latUS := float64(time.Since(t0)) / float64(time.Microsecond)
			mu.Lock()
			defer mu.Unlock()
			if ok {
				res.Targets[ti].Done++
			} else {
				res.Targets[ti].Errors++
			}
			if responded {
				res.Targets[ti].Latency.Add(latUS)
			}
		}(ti, cfg.Targets[ti].URL)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// doGet issues one request. ok means status < 400; responded means an HTTP
// response arrived at all (latency is meaningful).
func doGet(ctx context.Context, client *http.Client, url string) (ok, responded bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode < 400, true
}

func pickTarget(r *rand.Rand, cum []float64) int {
	x := r.Float64()
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// Format renders the run as an aligned table with p50/p99/p999 tails per
// target, plus an aggregate row.
func (res *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open-loop run: %d arrivals over %.1fs (%.1f rps offered)\n\n",
		res.Intended, res.Elapsed.Seconds(),
		float64(res.Intended)/res.Elapsed.Seconds())
	fmt.Fprintf(&b, "%-10s %8s %8s %7s %8s %10s %10s %10s\n",
		"target", "sent", "done", "errors", "dropped", "p50(ms)", "p99(ms)", "p999(ms)")
	rows := make([]TargetResult, len(res.Targets))
	copy(rows, res.Targets)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	agg, err := stats.NewLogHistogram(1, 60e6, 2400)
	if err != nil {
		panic(err) // fixed valid layout; cannot fail
	}
	var sent, done, errs, dropped int64
	for _, tr := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %7d %8d %10s %10s %10s\n",
			tr.Name, tr.Sent, tr.Done, tr.Errors, tr.Dropped,
			fmtMS(tr.Latency, 0.50), fmtMS(tr.Latency, 0.99), fmtMS(tr.Latency, 0.999))
		if err := agg.Merge(tr.Latency); err != nil {
			panic(err) // identical layouts by construction
		}
		sent += tr.Sent
		done += tr.Done
		errs += tr.Errors
		dropped += tr.Dropped
	}
	fmt.Fprintf(&b, "%-10s %8d %8d %7d %8d %10s %10s %10s\n",
		"TOTAL", sent, done, errs, dropped,
		fmtMS(agg, 0.50), fmtMS(agg, 0.99), fmtMS(agg, 0.999))
	return b.String()
}

func fmtMS(h *stats.LogHistogram, q float64) string {
	if h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", h.Quantile(q)/1000)
}
