package load

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	tg := []Target{{Name: "a", URL: "http://127.0.0.1:1/x"}}
	cases := []Config{
		{RPS: 100, Duration: time.Second},                                 // no targets
		{Targets: tg, RPS: 0, Duration: time.Second},                      // zero rate
		{Targets: tg, RPS: math.Inf(1), Duration: time.Second},            // inf rate
		{Targets: tg, RPS: 100},                                           // no duration
		{Targets: tg, RPS: 100, Duration: time.Second, MaxInFlight: -1},   // bad limit
		{Targets: []Target{{Name: "a"}}, RPS: 100, Duration: time.Second}, // no URL
		{Targets: []Target{{Name: "a", URL: "http://x", Weight: -1}}, RPS: 100, Duration: time.Second},
	}
	for i, cfg := range cases {
		if _, err := Run(ctx, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// Open-loop property: the arrival count tracks RPS × Duration regardless of
// how the server behaves, because the schedule is absolute. The count check
// uses a generous 6σ Poisson band so wall-clock jitter cannot flake it.
func TestArrivalCountMatchesRate(t *testing.T) {
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
	}))
	defer srv.Close()
	cfg := Config{
		Targets:  []Target{{Name: "ok", URL: srv.URL}},
		RPS:      400,
		Duration: 2 * time.Second,
		Seed:     1,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 800.0
	if got := float64(res.Intended); math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Errorf("intended %v arrivals at 400 rps × 2 s, want ≈800", got)
	}
	tr := res.Targets[0]
	if tr.Sent != res.Intended || tr.Dropped != 0 {
		t.Errorf("fast server: sent %d dropped %d, want all %d sent", tr.Sent, tr.Dropped, res.Intended)
	}
	if tr.Done != tr.Sent || tr.Errors != 0 {
		t.Errorf("done %d errors %d for %d sent", tr.Done, tr.Errors, tr.Sent)
	}
	if tr.Latency.Count() != tr.Done {
		t.Errorf("recorded %d latencies for %d completions", tr.Latency.Count(), tr.Done)
	}
	if atomic.LoadInt64(&hits) != tr.Sent {
		t.Errorf("server saw %d hits, harness sent %d", hits, tr.Sent)
	}
}

// A stalled server must not throttle arrivals (open loop): the schedule keeps
// producing, excess arrivals shed at the in-flight limit as drops, and the
// intended count stays on the configured rate.
func TestStalledServerDoesNotThrottleArrivals(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)
	cfg := Config{
		Targets:     []Target{{Name: "stall", URL: srv.URL}},
		RPS:         300,
		Duration:    time.Second,
		Timeout:     200 * time.Millisecond,
		MaxInFlight: 8,
		Seed:        2,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 300.0
	if got := float64(res.Intended); math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Errorf("stalled server bent the arrival schedule: %v arrivals, want ≈300", got)
	}
	tr := res.Targets[0]
	if tr.Dropped == 0 {
		t.Error("no drops at MaxInFlight=8 against a stalled server")
	}
	if tr.Sent+tr.Dropped != res.Intended {
		t.Errorf("sent %d + dropped %d ≠ intended %d", tr.Sent, tr.Dropped, res.Intended)
	}
	if tr.Done != 0 || tr.Errors != tr.Sent {
		t.Errorf("stalled server produced done=%d errors=%d of %d sent", tr.Done, tr.Errors, tr.Sent)
	}
}

// HTTP error statuses count as errors but still record latency; weights split
// the stream across targets.
func TestErrorsAndWeights(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/bad") {
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()
	cfg := Config{
		Targets: []Target{
			{Name: "good", URL: srv.URL + "/good", Weight: 3},
			{Name: "bad", URL: srv.URL + "/bad", Weight: 1},
		},
		RPS:      400,
		Duration: time.Second,
		Seed:     3,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := res.Targets[0], res.Targets[1]
	if bad.Errors != bad.Sent || bad.Done != 0 {
		t.Errorf("bad target: %d errors of %d sent", bad.Errors, bad.Sent)
	}
	if bad.Latency.Count() != bad.Sent {
		t.Errorf("HTTP-error responses must record latency: %d of %d", bad.Latency.Count(), bad.Sent)
	}
	if good.Errors != 0 || good.Done != good.Sent {
		t.Errorf("good target: done %d errors %d of %d", good.Done, good.Errors, good.Sent)
	}
	// 3:1 weights: the good share must be clearly dominant.
	if good.Sent < bad.Sent*2 {
		t.Errorf("weight 3:1 produced %d:%d split", good.Sent, bad.Sent)
	}
	out := res.Format()
	for _, want := range []string{"TOTAL", "good", "bad", "p999(ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted result missing %q:\n%s", want, out)
		}
	}
}

func TestContextCancelStopsRun(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	cfg := Config{
		Targets:  []Target{{Name: "a", URL: srv.URL}},
		RPS:      100,
		Duration: time.Hour, // far beyond the context deadline
		Seed:     4,
	}
	start := time.Now()
	res, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled run did not stop promptly")
	}
	if res.Intended == 0 {
		t.Error("nothing arrived before cancellation")
	}
}
