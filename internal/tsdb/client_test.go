package tsdb

import (
	"net/http/httptest"
	"testing"

	"repro/internal/sim"
)

func TestClientRoundTrip(t *testing.T) {
	db := New(0)
	for m := 0; m < 10; m++ {
		if err := db.Append("row/0", sim.Time(m)*sim.Time(sim.Minute), float64(m)); err != nil {
			t.Fatal(err)
		}
	}
	db.Append("dc", 0, 99)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)

	names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "dc" {
		t.Errorf("Names = %v", names)
	}

	pts, err := c.Query("row/0", sim.Time(2*sim.Minute), sim.Time(4*sim.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].V != 2 {
		t.Errorf("Query = %v", pts)
	}

	all, err := c.QueryAll("row/0")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Errorf("QueryAll returned %d points", len(all))
	}

	p, err := c.Latest("row/0")
	if err != nil {
		t.Fatal(err)
	}
	if p.V != 9 {
		t.Errorf("Latest = %+v", p)
	}

	if _, err := c.Latest("missing"); err == nil {
		t.Error("missing series did not error")
	}
}

func TestClientConnectionError(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if _, err := c.Names(); err == nil {
		t.Error("unreachable server did not error")
	}
}
