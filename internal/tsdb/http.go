package tsdb

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"

	"repro/internal/sim"
)

// Handler returns the RESTful query API over the database:
//
//	GET /series                          → JSON array of series names
//	GET /query?name=N&from=MS&to=MS      → JSON array of {t, v} points
//	GET /latest?name=N                   → JSON {t, v}
//
// from/to are virtual-time milliseconds; both are optional (default: the
// full retained range). This mirrors the paper's "RESTful API for efficient
// query against these data" (§3.3).
func (db *DB) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /series", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, db.Names())
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, "missing name parameter", http.StatusBadRequest)
			return
		}
		from, err := parseTime(r.URL.Query().Get("from"), sim.Time(math.MinInt64))
		if err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
		to, err := parseTime(r.URL.Query().Get("to"), sim.Time(math.MaxInt64))
		if err != nil {
			http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
			return
		}
		pts := db.Query(name, from, to)
		if pts == nil {
			pts = []Point{}
		}
		writeJSON(w, pts)
	})
	mux.HandleFunc("GET /latest", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, "missing name parameter", http.StatusBadRequest)
			return
		}
		p, ok := db.Latest(name)
		if !ok {
			http.Error(w, "no such series: "+name, http.StatusNotFound)
			return
		}
		writeJSON(w, p)
	})
	return mux
}

func parseTime(s string, def sim.Time) (sim.Time, error) {
	if s == "" {
		return def, nil
	}
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return sim.Time(ms), nil
}

// writeJSON marshals v before touching the response, so an encoding failure
// (e.g. a NaN sample value, which encoding/json rejects) becomes a clean 500
// instead of a truncated 200 with the status line already committed.
func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}
