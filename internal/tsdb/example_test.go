package tsdb_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tsdb"
)

// Append-and-query round trip at the monitor's 1-minute cadence.
func ExampleDB() {
	db := tsdb.New(0)
	for m := 0; m < 5; m++ {
		if err := db.Append("row/0", sim.Time(m)*sim.Time(sim.Minute), 30000+float64(m)*100); err != nil {
			panic(err)
		}
	}
	pts := db.Query("row/0", sim.Time(sim.Minute), sim.Time(3*sim.Minute))
	for _, p := range pts {
		fmt.Printf("%v %.0f\n", p.T, p.V)
	}
	latest, _ := db.Latest("row/0")
	fmt.Printf("latest %.0f\n", latest.V)
	// Output:
	// d0 00:01:00.000 30100
	// d0 00:02:00.000 30200
	// d0 00:03:00.000 30300
	// latest 30400
}
