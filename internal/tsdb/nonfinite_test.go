package tsdb

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestNonFiniteAppendRejected is the regression test for the NaN-poisoning
// bug: Append used to accept NaN/±Inf, and because encoding/json cannot
// marshal them, a single poisoned sample made every later /query and
// /latest on that series return 500. Ingest must reject them with an error,
// count them in tsdb_append_errors_total, and leave the series queryable.
func TestNonFiniteAppendRejected(t *testing.T) {
	db := New(0)
	reg := obs.NewRegistry()
	db.Instrument(reg)

	if err := db.Append("row/0", 0, 100); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := db.Append("row/0", sim.Time(sim.Minute), v); err == nil {
			t.Errorf("Append(%v) accepted, want error", v)
		}
	}
	if got := db.Len("row/0"); got != 1 {
		t.Fatalf("series retained %d points after rejected appends, want 1", got)
	}

	// Later finite appends still work at the timestamp the rejects carried.
	if err := db.Append("row/0", sim.Time(sim.Minute), 101); err != nil {
		t.Fatalf("finite append after rejects: %v", err)
	}

	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	for _, path := range []string{"/query?name=row/0", "/latest?name=row/0"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d after NaN append attempt, want 200", path, resp.StatusCode)
		}
	}

	// The rejections are visible on the scrape counter.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tsdb_append_errors_total 3") {
		t.Errorf("scrape missing tsdb_append_errors_total 3:\n%s", buf.String())
	}
}
