package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAppendAndQuery(t *testing.T) {
	db := New(0)
	for i := 0; i < 10; i++ {
		if err := db.Append("row/0", sim.Time(i)*sim.Time(sim.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pts := db.Query("row/0", sim.Time(2*sim.Minute), sim.Time(5*sim.Minute))
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	if pts[0].V != 2 || pts[3].V != 5 {
		t.Errorf("range query wrong: %+v", pts)
	}
	if got := db.Len("row/0"); got != 10 {
		t.Errorf("Len = %d", got)
	}
	if vs := db.Values("row/0", 0, sim.Time(sim.Hour)); len(vs) != 10 || vs[9] != 9 {
		t.Errorf("Values = %v", vs)
	}
	if pts := db.Query("missing", 0, sim.Time(sim.Hour)); pts != nil {
		t.Errorf("query of missing series = %v", pts)
	}
}

func TestOutOfOrderAppendRejected(t *testing.T) {
	db := New(0)
	if err := db.Append("s", sim.Time(sim.Minute), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", 0, 2); err == nil {
		t.Error("out-of-order append accepted")
	}
	// Equal timestamps are allowed (restart re-sampling the same minute).
	if err := db.Append("s", sim.Time(sim.Minute), 3); err != nil {
		t.Errorf("equal-timestamp append rejected: %v", err)
	}
}

func TestLatest(t *testing.T) {
	db := New(0)
	if _, ok := db.Latest("s"); ok {
		t.Error("Latest on empty series reported ok")
	}
	db.Append("s", 1, 10)
	db.Append("s", 2, 20)
	p, ok := db.Latest("s")
	if !ok || p.V != 20 || p.T != 2 {
		t.Errorf("Latest = %+v, %v", p, ok)
	}
}

func TestRetention(t *testing.T) {
	db := New(5)
	for i := 0; i < 100; i++ {
		db.Append("s", sim.Time(i), float64(i))
	}
	if got := db.Len("s"); got != 5 {
		t.Fatalf("retained %d points, want 5", got)
	}
	pts := db.Query("s", 0, sim.Time(1000))
	if pts[0].V != 95 || pts[4].V != 99 {
		t.Errorf("retained wrong window: %+v", pts)
	}
}

func TestNames(t *testing.T) {
	db := New(0)
	db.Append("b", 0, 1)
	db.Append("a", 0, 1)
	db.Append("c", 0, 1)
	names := db.Names()
	if !sort.StringsAreSorted(names) || len(names) != 3 {
		t.Errorf("Names = %v", names)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New(1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(2)
		go func() {
			defer wg.Done()
			name := []string{"a", "b", "c", "d"}[w]
			for i := 0; i < 1000; i++ {
				_ = db.Append(name, sim.Time(i), float64(i))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				db.Query("a", 0, sim.Time(i))
				db.Latest("b")
				db.Names()
			}
		}()
	}
	wg.Wait()
}

func TestHTTPAPI(t *testing.T) {
	db := New(0)
	for i := 0; i < 5; i++ {
		db.Append("row/0", sim.Time(i)*sim.Time(sim.Minute), float64(100+i))
	}
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	// /series
	var names []string
	getJSON(t, srv.URL+"/series", &names)
	if len(names) != 1 || names[0] != "row/0" {
		t.Errorf("/series = %v", names)
	}

	// /query full range
	var pts []Point
	getJSON(t, srv.URL+"/query?name=row/0", &pts)
	if len(pts) != 5 {
		t.Errorf("/query returned %d points", len(pts))
	}

	// /query sub-range
	pts = nil
	getJSON(t, srv.URL+"/query?name=row/0&from=60000&to=120000", &pts)
	if len(pts) != 2 || pts[0].V != 101 {
		t.Errorf("/query range = %+v", pts)
	}

	// /latest
	var p Point
	getJSON(t, srv.URL+"/latest?name=row/0", &p)
	if p.V != 104 {
		t.Errorf("/latest = %+v", p)
	}

	// error cases
	for _, url := range []string{
		srv.URL + "/query",
		srv.URL + "/query?name=x&from=zzz",
		srv.URL + "/query?name=x&to=zzz",
		srv.URL + "/latest",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", url, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/latest?name=missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing series status %d, want 404", resp.StatusCode)
	}
	// Empty query result is [] not null.
	respQ, err := http.Get(srv.URL + "/query?name=missing")
	if err != nil {
		t.Fatal(err)
	}
	defer respQ.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(respQ.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw) == "null" {
		t.Error("empty query encoded as null, want []")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// Property: Query(name, from, to) equals filtering a reference slice, for
// monotone appends under any retention setting.
func TestQueryMatchesReferenceProperty(t *testing.T) {
	f := func(valsRaw []uint8, retention uint8, fromRaw, toRaw uint8) bool {
		db := New(int(retention % 16))
		var ref []Point
		tm := sim.Time(0)
		for i, v := range valsRaw {
			tm += sim.Time(v%7) * sim.Time(sim.Second)
			p := Point{T: tm, V: float64(v) + float64(i)/1000}
			if db.Append("s", p.T, p.V) != nil {
				return false
			}
			ref = append(ref, p)
		}
		if r := int(retention % 16); r > 0 && len(ref) > r {
			ref = ref[len(ref)-r:]
		}
		from := sim.Time(fromRaw) * sim.Time(sim.Second)
		to := sim.Time(toRaw) * sim.Time(sim.Second)
		got := db.Query("s", from, to)
		var want []Point
		for _, p := range ref {
			if p.T >= from && p.T <= to {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
