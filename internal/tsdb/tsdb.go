// Package tsdb is the in-memory time-series database behind the power
// monitor. The paper stores 1-minute power samples in MySQL and exposes a
// RESTful query API; this package provides the same contract — append-only
// per-series storage with retention, range queries, and an HTTP API — so the
// monitor and controller stay stateless, as §3.3 requires.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Point is one sample of one series.
type Point struct {
	T sim.Time `json:"t"`
	V float64  `json:"v"`
}

// shardCount is the number of independently locked series-map shards. A
// power of two so the hash can be masked. 64 comfortably exceeds the core
// count of the machines the -parallel experiment runs target, so concurrent
// HTTP queries of different series virtually never contend with the
// monitor's append path.
const shardCount = 64

// shard is one lock + series-map pair. Each series lives in exactly one
// shard (by name hash), so per-series timestamp ordering is still enforced
// under a single lock.
type shard struct {
	mu     sync.RWMutex
	series map[string][]Point
}

// DB stores named series of time-ordered points. It is safe for concurrent
// use: the simulation appends while HTTP queries read. The lock is sharded
// by series name so readers of one series never serialize against appends
// to another.
type DB struct {
	shards    [shardCount]shard
	retention int // max points kept per series; 0 = unlimited
	met       *metrics
}

// metrics is the DB's optional observability wiring.
type metrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	queryDur     *obs.Histogram
}

// Instrument registers the database's metrics on reg (nil is a no-op):
//
//	tsdb_appends_total            counter
//	tsdb_append_errors_total      counter (out-of-order or non-finite rejections)
//	tsdb_series                   gauge, collected at scrape time
//	tsdb_points                   gauge, total retained points
//	tsdb_query_duration_seconds   summary, wall-clock per Query
//
// Call before serving concurrent traffic.
func (db *DB) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	db.met = &metrics{
		appends:      reg.Counter("tsdb_appends_total", "Samples appended across all series."),
		appendErrors: reg.Counter("tsdb_append_errors_total", "Appends rejected (out-of-order timestamps or non-finite values)."),
		queryDur: reg.Histogram("tsdb_query_duration_seconds",
			"Wall-clock duration of one range query.", 1e-8, 10, 400),
	}
	reg.GaugeFunc("tsdb_series", "Retained series count.",
		func() float64 { return float64(db.SeriesCount()) })
	reg.GaugeFunc("tsdb_points", "Total retained points across all series.",
		func() float64 { return float64(db.PointCount()) })
}

// New returns a DB that retains at most retentionPoints per series
// (0 = unlimited).
func New(retentionPoints int) *DB {
	db := &DB{retention: retentionPoints}
	for i := range db.shards {
		db.shards[i].series = make(map[string][]Point)
	}
	return db
}

// shardOf returns the shard owning the named series (FNV-1a over the name).
func (db *DB) shardOf(name string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &db.shards[h&(shardCount-1)]
}

// Append adds a sample to the named series. Timestamps must be
// non-decreasing per series; out-of-order appends return an error (the
// monitor never produces them, so an error indicates a wiring bug).
// Non-finite values (NaN, ±Inf) are rejected: encoding/json cannot marshal
// them, so a single poisoned sample would turn every later /query and
// /latest on the series into a 500.
func (db *DB) Append(name string, t sim.Time, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		if db.met != nil {
			db.met.appendErrors.Inc()
		}
		return fmt.Errorf("tsdb: non-finite value %v appended to %q at %v", v, name, t)
	}
	sh := db.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pts := sh.series[name]
	if n := len(pts); n > 0 && pts[n-1].T > t {
		if db.met != nil {
			db.met.appendErrors.Inc()
		}
		return fmt.Errorf("tsdb: out-of-order append to %q: %v after %v", name, t, pts[n-1].T)
	}
	if db.met != nil {
		db.met.appends.Inc()
	}
	pts = append(pts, Point{T: t, V: v})
	if db.retention > 0 && len(pts) > db.retention {
		// Drop the oldest points; copy to release the backing array
		// occasionally rather than on every append.
		if len(pts) > db.retention*2 {
			pts = append([]Point(nil), pts[len(pts)-db.retention:]...)
		} else {
			pts = pts[len(pts)-db.retention:]
		}
	}
	sh.series[name] = pts
	return nil
}

// Query returns the points of the named series with from ≤ T ≤ to, in time
// order. The result is a copy.
func (db *DB) Query(name string, from, to sim.Time) []Point {
	if db.met != nil {
		defer func(start time.Time) {
			db.met.queryDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	sh := db.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	pts := sh.series[name]
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= from })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].T > to })
	if lo >= hi {
		return nil
	}
	return append([]Point(nil), pts[lo:hi]...)
}

// Values is Query returning only the sample values.
func (db *DB) Values(name string, from, to sim.Time) []float64 {
	pts := db.Query(name, from, to)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Latest returns the most recent point of the named series.
func (db *DB) Latest(name string) (Point, bool) {
	sh := db.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	pts := sh.series[name]
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Len returns the number of retained points in the named series.
func (db *DB) Len(name string) int {
	sh := db.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.series[name])
}

// SeriesCount returns the number of retained series.
func (db *DB) SeriesCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// PointCount returns the total number of retained points across series.
func (db *DB) PointCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, pts := range sh.series {
			n += len(pts)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Names returns all series names, sorted.
func (db *DB) Names() []string {
	var names []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for n := range sh.series {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}
