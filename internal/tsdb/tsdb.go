// Package tsdb is the in-memory time-series database behind the power
// monitor. The paper stores 1-minute power samples in MySQL and exposes a
// RESTful query API; this package provides the same contract — append-only
// per-series storage with retention, range queries, and an HTTP API — so the
// monitor and controller stay stateless, as §3.3 requires.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Point is one sample of one series.
type Point struct {
	T sim.Time `json:"t"`
	V float64  `json:"v"`
}

// shardCount is the number of independently locked series-map shards. A
// power of two so the hash can be masked. 64 comfortably exceeds the core
// count of the machines the -parallel experiment runs target, so concurrent
// HTTP queries of different series virtually never contend with the
// monitor's append path.
const shardCount = 64

// shard is one lock + series-map pair. Each series lives in exactly one
// shard (by name hash), so per-series timestamp ordering is still enforced
// under a single lock.
type shard struct {
	mu     sync.RWMutex
	series map[string]*series
}

// defaultBlockCap is the fixed capacity of one storage block. Small enough
// that an idle series wastes little, large enough that index math and the
// blocks slice stay cheap at millions of points.
const defaultBlockCap = 512

// series is one named series stored as fixed-capacity blocks instead of a
// single append-grown slice. Every block except the last is full, and start
// (always < bc) counts points of blocks[0] already dropped by retention, so
// retained point i lives at the globally computable position start+i. With
// retention enabled the head block is recycled as the next tail block the
// moment retention consumes it, so steady-state appends allocate nothing —
// the old single-slice layout re-copied up to 2× retention points and showed
// up as 256 allocs / 175 KB per 100k-server sweep.
type series struct {
	bc     int
	blocks [][]Point
	start  int     // points of blocks[0] consumed by retention
	n      int     // retained point count
	spare  []Point // one empty full-capacity block awaiting reuse
}

// at returns retained point i (0 ≤ i < n).
func (s *series) at(i int) Point {
	a := s.start + i
	return s.blocks[a/s.bc][a%s.bc]
}

// last returns the most recently appended point; the series must be non-empty.
func (s *series) last() Point {
	blk := s.blocks[len(s.blocks)-1]
	return blk[len(blk)-1]
}

// DB stores named series of time-ordered points. It is safe for concurrent
// use: the simulation appends while HTTP queries read. The lock is sharded
// by series name so readers of one series never serialize against appends
// to another.
type DB struct {
	shards    [shardCount]shard
	retention int // max points kept per series; 0 = unlimited
	met       *metrics
}

// metrics is the DB's optional observability wiring.
type metrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	queryDur     *obs.Histogram
}

// Instrument registers the database's metrics on reg (nil is a no-op):
//
//	tsdb_appends_total            counter
//	tsdb_append_errors_total      counter (out-of-order or non-finite rejections)
//	tsdb_series                   gauge, collected at scrape time
//	tsdb_points                   gauge, total retained points
//	tsdb_query_duration_seconds   summary, wall-clock per Query
//
// Call before serving concurrent traffic.
func (db *DB) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	db.met = &metrics{
		appends:      reg.Counter("tsdb_appends_total", "Samples appended across all series."),
		appendErrors: reg.Counter("tsdb_append_errors_total", "Appends rejected (out-of-order timestamps or non-finite values)."),
		queryDur: reg.Histogram("tsdb_query_duration_seconds",
			"Wall-clock duration of one range query.", 1e-8, 10, 400),
	}
	reg.GaugeFunc("tsdb_series", "Retained series count.",
		func() float64 { return float64(db.SeriesCount()) })
	reg.GaugeFunc("tsdb_points", "Total retained points across all series.",
		func() float64 { return float64(db.PointCount()) })
}

// New returns a DB that retains at most retentionPoints per series
// (0 = unlimited).
func New(retentionPoints int) *DB {
	db := &DB{retention: retentionPoints}
	for i := range db.shards {
		db.shards[i].series = make(map[string]*series)
	}
	return db
}

// newSeries sizes a fresh series' blocks: never larger than the retention
// limit, so a short-retention series does not hold a mostly empty block.
func (db *DB) newSeries() *series {
	bc := defaultBlockCap
	if db.retention > 0 && db.retention < bc {
		bc = db.retention
	}
	return &series{bc: bc}
}

// shardOf returns the shard owning the named series (FNV-1a over the name).
func (db *DB) shardOf(name string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &db.shards[h&(shardCount-1)]
}

// Append adds a sample to the named series. Timestamps must be
// non-decreasing per series; out-of-order appends return an error (the
// monitor never produces them, so an error indicates a wiring bug).
// Non-finite values (NaN, ±Inf) are rejected: encoding/json cannot marshal
// them, so a single poisoned sample would turn every later /query and
// /latest on the series into a 500.
func (db *DB) Append(name string, t sim.Time, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		if db.met != nil {
			db.met.appendErrors.Inc()
		}
		return fmt.Errorf("tsdb: non-finite value %v appended to %q at %v", v, name, t)
	}
	sh := db.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.series[name]
	if s == nil {
		s = db.newSeries()
		sh.series[name] = s
	}
	if s.n > 0 && s.last().T > t {
		if db.met != nil {
			db.met.appendErrors.Inc()
		}
		return fmt.Errorf("tsdb: out-of-order append to %q: %v after %v", name, t, s.last().T)
	}
	if db.met != nil {
		db.met.appends.Inc()
	}
	tail := len(s.blocks) - 1
	if tail < 0 || len(s.blocks[tail]) == s.bc {
		blk := s.spare
		s.spare = nil
		if blk == nil {
			blk = make([]Point, 0, s.bc)
		}
		s.blocks = append(s.blocks, blk)
		tail++
	}
	s.blocks[tail] = append(s.blocks[tail], Point{T: t, V: v})
	s.n++
	if db.retention > 0 && s.n > db.retention {
		// Drop the oldest point; when that empties the head block, recycle
		// it as the next tail block instead of allocating.
		s.n--
		s.start++
		if s.start == s.bc {
			head := s.blocks[0]
			copy(s.blocks, s.blocks[1:])
			s.blocks[len(s.blocks)-1] = nil
			s.blocks = s.blocks[:len(s.blocks)-1]
			s.spare = head[:0]
			s.start = 0
		}
	}
	return nil
}

// Query returns the points of the named series with from ≤ T ≤ to, in time
// order. The result is a copy.
func (db *DB) Query(name string, from, to sim.Time) []Point {
	if db.met != nil {
		defer func(start time.Time) {
			db.met.queryDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	sh := db.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[name]
	if s == nil || s.n == 0 {
		return nil
	}
	lo := sort.Search(s.n, func(i int) bool { return s.at(i).T >= from })
	hi := sort.Search(s.n, func(i int) bool { return s.at(i).T > to })
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	for k := lo; k < hi; {
		a := s.start + k
		k += copy(out[k-lo:], s.blocks[a/s.bc][a%s.bc:])
	}
	return out
}

// Values is Query returning only the sample values.
func (db *DB) Values(name string, from, to sim.Time) []float64 {
	pts := db.Query(name, from, to)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Latest returns the most recent point of the named series.
func (db *DB) Latest(name string) (Point, bool) {
	sh := db.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[name]
	if s == nil || s.n == 0 {
		return Point{}, false
	}
	return s.last(), true
}

// Len returns the number of retained points in the named series.
func (db *DB) Len(name string) int {
	sh := db.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s := sh.series[name]; s != nil {
		return s.n
	}
	return 0
}

// SeriesCount returns the number of retained series.
func (db *DB) SeriesCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// PointCount returns the total number of retained points across series.
func (db *DB) PointCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			n += s.n
		}
		sh.mu.RUnlock()
	}
	return n
}

// Names returns all series names, sorted.
func (db *DB) Names() []string {
	var names []string
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for n := range sh.series {
			names = append(names, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}
