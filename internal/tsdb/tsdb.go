// Package tsdb is the in-memory time-series database behind the power
// monitor. The paper stores 1-minute power samples in MySQL and exposes a
// RESTful query API; this package provides the same contract — append-only
// per-series storage with retention, range queries, and an HTTP API — so the
// monitor and controller stay stateless, as §3.3 requires.
package tsdb

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Point is one sample of one series.
type Point struct {
	T sim.Time `json:"t"`
	V float64  `json:"v"`
}

// DB stores named series of time-ordered points. It is safe for concurrent
// use: the simulation appends while HTTP queries read.
type DB struct {
	mu        sync.RWMutex
	series    map[string][]Point
	retention int // max points kept per series; 0 = unlimited
	met       *metrics
}

// metrics is the DB's optional observability wiring.
type metrics struct {
	appends      *obs.Counter
	appendErrors *obs.Counter
	queryDur     *obs.Histogram
}

// Instrument registers the database's metrics on reg (nil is a no-op):
//
//	tsdb_appends_total            counter
//	tsdb_append_errors_total      counter (out-of-order rejections)
//	tsdb_series                   gauge, collected at scrape time
//	tsdb_points                   gauge, total retained points
//	tsdb_query_duration_seconds   summary, wall-clock per Query
//
// Call before serving concurrent traffic.
func (db *DB) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	db.met = &metrics{
		appends:      reg.Counter("tsdb_appends_total", "Samples appended across all series."),
		appendErrors: reg.Counter("tsdb_append_errors_total", "Appends rejected (out-of-order timestamps)."),
		queryDur: reg.Histogram("tsdb_query_duration_seconds",
			"Wall-clock duration of one range query.", 1e-8, 10, 400),
	}
	reg.GaugeFunc("tsdb_series", "Retained series count.",
		func() float64 { return float64(db.SeriesCount()) })
	reg.GaugeFunc("tsdb_points", "Total retained points across all series.",
		func() float64 { return float64(db.PointCount()) })
}

// New returns a DB that retains at most retentionPoints per series
// (0 = unlimited).
func New(retentionPoints int) *DB {
	return &DB{series: make(map[string][]Point), retention: retentionPoints}
}

// Append adds a sample to the named series. Timestamps must be
// non-decreasing per series; out-of-order appends return an error (the
// monitor never produces them, so an error indicates a wiring bug).
func (db *DB) Append(name string, t sim.Time, v float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.series[name]
	if n := len(pts); n > 0 && pts[n-1].T > t {
		if db.met != nil {
			db.met.appendErrors.Inc()
		}
		return fmt.Errorf("tsdb: out-of-order append to %q: %v after %v", name, t, pts[n-1].T)
	}
	if db.met != nil {
		db.met.appends.Inc()
	}
	pts = append(pts, Point{T: t, V: v})
	if db.retention > 0 && len(pts) > db.retention {
		// Drop the oldest points; copy to release the backing array
		// occasionally rather than on every append.
		if len(pts) > db.retention*2 {
			pts = append([]Point(nil), pts[len(pts)-db.retention:]...)
		} else {
			pts = pts[len(pts)-db.retention:]
		}
	}
	db.series[name] = pts
	return nil
}

// Query returns the points of the named series with from ≤ T ≤ to, in time
// order. The result is a copy.
func (db *DB) Query(name string, from, to sim.Time) []Point {
	if db.met != nil {
		defer func(start time.Time) {
			db.met.queryDur.Observe(time.Since(start).Seconds())
		}(time.Now())
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	pts := db.series[name]
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= from })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].T > to })
	if lo >= hi {
		return nil
	}
	return append([]Point(nil), pts[lo:hi]...)
}

// Values is Query returning only the sample values.
func (db *DB) Values(name string, from, to sim.Time) []float64 {
	pts := db.Query(name, from, to)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// Latest returns the most recent point of the named series.
func (db *DB) Latest(name string) (Point, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pts := db.series[name]
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Len returns the number of retained points in the named series.
func (db *DB) Len(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series[name])
}

// SeriesCount returns the number of retained series.
func (db *DB) SeriesCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// PointCount returns the total number of retained points across series.
func (db *DB) PointCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, pts := range db.series {
		n += len(pts)
	}
	return n
}

// Names returns all series names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
