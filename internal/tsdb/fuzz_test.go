package tsdb

import (
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/sim"
)

// FuzzQueryAPI drives the REST query endpoints with arbitrary series names
// and from/to strings. Whatever arrives on the wire, the handler must answer
// with a well-formed HTTP status — 200, 400, or 404 — and never panic; every
// 200 from /query must carry a JSON body.
func FuzzQueryAPI(f *testing.F) {
	f.Add("power/row/0", "0", "86400000")
	f.Add("power/row/0", "", "")
	f.Add("", "1", "2")
	f.Add("no/such/series", "-9223372036854775808", "9223372036854775807")
	f.Add("power/row/0", "99999999999999999999", "1e9")
	f.Add("power/row/0", "12x", " 12")
	f.Add("a&b=c", "+5", "-0")
	f.Add("power/row/0", "86400000", "0")

	f.Fuzz(func(t *testing.T, name, from, to string) {
		db := New(1024)
		for i := 0; i < 10; i++ {
			ts := sim.Time(i) * sim.Time(sim.Minute)
			if err := db.Append("power/row/0", ts, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		h := db.Handler()

		q := url.Values{}
		if name != "" {
			q.Set("name", name)
		}
		if from != "" {
			q.Set("from", from)
		}
		if to != "" {
			q.Set("to", to)
		}
		for _, path := range []string{"/query", "/latest", "/series"} {
			req := httptest.NewRequest("GET", path+"?"+q.Encode(), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			switch rec.Code {
			case 200, 400, 404:
			default:
				t.Fatalf("GET %s?%s → %d\n%s", path, q.Encode(), rec.Code, rec.Body)
			}
			if path == "/query" && rec.Code == 200 && rec.Body.Len() == 0 {
				t.Fatalf("200 from /query with empty body (name=%q from=%q to=%q)", name, from, to)
			}
		}
	})
}
