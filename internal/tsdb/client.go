package tsdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/sim"
)

// Client queries a remote DB served by Handler — the consumer side of the
// paper's RESTful monitor API (cmd/ampere-ctl uses it; so can any external
// tooling).
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) get(path string, query url.Values, out any) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return fmt.Errorf("tsdb client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("tsdb client: GET %s: %s: %s", path, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("tsdb client: decoding %s: %w", path, err)
	}
	return nil
}

// Names lists the remote series.
func (c *Client) Names() ([]string, error) {
	var names []string
	if err := c.get("/series", nil, &names); err != nil {
		return nil, err
	}
	return names, nil
}

// Query fetches the named series in [from, to].
func (c *Client) Query(name string, from, to sim.Time) ([]Point, error) {
	q := url.Values{"name": {name}}
	q.Set("from", strconv.FormatInt(int64(from), 10))
	q.Set("to", strconv.FormatInt(int64(to), 10))
	var pts []Point
	if err := c.get("/query", q, &pts); err != nil {
		return nil, err
	}
	return pts, nil
}

// QueryAll fetches the named series' full retained range.
func (c *Client) QueryAll(name string) ([]Point, error) {
	var pts []Point
	if err := c.get("/query", url.Values{"name": {name}}, &pts); err != nil {
		return nil, err
	}
	return pts, nil
}

// Latest fetches the most recent point of the named series.
func (c *Client) Latest(name string) (Point, error) {
	var p Point
	if err := c.get("/latest", url.Values{"name": {name}}, &p); err != nil {
		return Point{}, err
	}
	return p, nil
}
