// Command powermon runs the power monitor against a live simulated cluster
// and serves its time-series database over the RESTful HTTP API of §3.3.
// The simulation advances continuously (one simulated minute per real
// tick), optionally under Ampere control, so the API can be explored with
// curl while power moves:
//
//	powermon -addr :8080 -tick 200ms -ampere
//	curl 'http://localhost:8080/series'
//	curl 'http://localhost:8080/query?name=row/0&from=0'
//	curl 'http://localhost:8080/latest?name=dc'
//	curl 'http://localhost:8080/status'
//	curl 'http://localhost:8080/domains'
//	curl 'http://localhost:8080/healthz'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		tick       = flag.Duration("tick", 200*time.Millisecond, "real time per simulated minute")
		rowServers = flag.Int("row-servers", 200, "servers per row")
		rows       = flag.Int("rows", 2, "rows")
		target     = flag.Float64("target", 0.75, "power target as fraction of rated")
		ro         = flag.Float64("ro", 0.25, "over-provisioning ratio")
		ampere     = flag.Bool("ampere", true, "run the Ampere controller")
		seed       = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*addr, *tick, *rows, *rowServers, *target, *ro, *ampere, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "powermon:", err)
		os.Exit(1)
	}
}

type status struct {
	mu         sync.Mutex
	SimTime    string    `json:"sim_time"`
	SimMinutes int64     `json:"sim_minutes"`
	RowPowerW  []float64 `json:"row_power_w"`
	BudgetW    float64   `json:"row_budget_w"`
	Frozen     []int     `json:"frozen_per_row"`
	Violations []int64   `json:"violations_per_row"`
}

func run(addr string, tick time.Duration, rows, rowServers int, target, ro float64, ampere bool, seed uint64) error {
	spec := cluster.DefaultSpec()
	spec.Rows = rows
	spec.ServersPerRack = 20
	spec.RacksPerRow = rowServers / spec.ServersPerRack
	if spec.RacksPerRow < 1 {
		return fmt.Errorf("row-servers %d too small", rowServers)
	}

	dd := workload.DefaultDurations()
	perServer := workload.RateForPowerFraction(target, spec.IdlePowerW, spec.RatedPowerW,
		spec.Containers, dd.Mean()*0.95, 1.0)
	product := workload.DefaultProduct("mixed", perServer*float64(spec.TotalServers()))

	rig, err := experiment.NewRig(experiment.RigConfig{
		Seed:      seed,
		Cluster:   spec,
		Products:  []workload.Product{product},
		Retention: 7 * 24 * 60, // one week of minutes per series
	})
	if err != nil {
		return err
	}
	rig.StartBase()

	budget := spec.RowRatedPowerW() / (1 + ro)
	var controller *core.Controller
	if ampere {
		domains := make([]core.Domain, rows)
		for r := 0; r < rows; r++ {
			ids := make([]cluster.ServerID, 0, rowServers)
			for _, sv := range rig.Cluster.Row(r) {
				ids = append(ids, sv.ID)
			}
			domains[r] = core.Domain{
				Name: fmt.Sprintf("row/%d", r), Servers: ids, BudgetW: budget,
				Kr: experiment.DefaultKr,
			}
		}
		controller, err = core.New(rig.Eng, rig.Mon, rig.Sched, core.DefaultConfig(), domains)
		if err != nil {
			return err
		}
		controller.Start()
	}

	st := &status{BudgetW: budget}

	// Simulation loop: one simulated minute per tick. The engine is
	// single-threaded; only the thread-safe TSDB and the mutex-guarded
	// status snapshot are shared with HTTP handlers.
	go func() {
		for range time.Tick(tick) {
			next := rig.Eng.Now().Add(sim.Minute)
			if err := rig.Run(next); err != nil {
				log.Printf("simulation error: %v", err)
				return
			}
			st.mu.Lock()
			st.SimTime = rig.Eng.Now().String()
			st.SimMinutes = rig.Eng.Now().Minute()
			st.RowPowerW = st.RowPowerW[:0]
			st.Frozen = st.Frozen[:0]
			st.Violations = st.Violations[:0]
			for r := 0; r < rows; r++ {
				p, _ := rig.Mon.RowPower(r)
				st.RowPowerW = append(st.RowPowerW, p)
				if controller != nil {
					st.Frozen = append(st.Frozen, controller.FrozenCount(r))
					st.Violations = append(st.Violations, controller.Stats(r).Violations)
				}
			}
			st.mu.Unlock()
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", rig.DB.Handler())
	if controller != nil {
		// The controller's operator API (per-domain status and health) is
		// internally locked, so it serves live alongside the running
		// simulation goroutine.
		h := controller.Handler()
		mux.Handle("/domains", h)
		mux.Handle("/domains/", h)
		mux.Handle("/healthz", h)
	}
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		defer st.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	log.Printf("powermon: serving %d×%d servers on %s (budget %.0f W/row, ampere=%v)",
		rows, rowServers, addr, budget, ampere)
	return http.ListenAndServe(addr, mux)
}
