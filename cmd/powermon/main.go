// Command powermon runs the power monitor against a live simulated cluster
// and serves its time-series database over the RESTful HTTP API of §3.3.
// The simulation advances continuously (one simulated minute per real
// tick), optionally under Ampere control, so the API can be explored with
// curl while power moves:
//
//	powermon -addr :8080 -tick 200ms -ampere
//	powermon -dr-at 30 -dr-depth 0.2 -dr-dwell 60 -dr-ramp 0.02
//	curl 'http://localhost:8080/series'
//	curl 'http://localhost:8080/query?name=row/0&from=0'
//	curl 'http://localhost:8080/latest?name=dc'
//	curl 'http://localhost:8080/status'
//	curl 'http://localhost:8080/domains'
//	curl 'http://localhost:8080/healthz'
//	curl 'http://localhost:8080/metrics'
//	curl 'http://localhost:8080/events?n=10'
//	curl 'http://localhost:8080/whatif?alt=ramp=0.02&horizon=60'
//
// With -obs (the default) every subsystem registers its metrics on one
// registry served in Prometheus text format at /metrics, and each control
// tick appends a decision event to a ring-buffer journal served at /events.
// -pprof additionally mounts net/http/pprof under /debug/pprof/. On SIGINT
// or SIGTERM the server drains in-flight requests and, when -journal-out is
// set, flushes the journal to that path as JSONL before exiting.
//
// The -dr-* flags schedule one demand-response event: at -dr-at simulated
// minutes every row budget dips by -dr-depth for -dr-dwell minutes, applied
// -dr-ramp per tick (0 = cliff). Breakers follow the effective budget, so
// /metrics shows the heat consequences of the chosen ramp rate live.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/breaker"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		tick       = flag.Duration("tick", 200*time.Millisecond, "real time per simulated minute")
		rowServers = flag.Int("row-servers", 200, "servers per row")
		rows       = flag.Int("rows", 2, "rows")
		target     = flag.Float64("target", 0.75, "power target as fraction of rated")
		ro         = flag.Float64("ro", 0.25, "over-provisioning ratio")
		ampere     = flag.Bool("ampere", true, "run the Ampere controller")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		obsOn      = flag.Bool("obs", true, "serve /metrics and /events")
		pprofOn    = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		journalCap = flag.Int("journal-cap", obs.DefaultJournalCap, "control-decision journal capacity (events)")
		journalOut = flag.String("journal-out", "", "flush the journal to this JSONL file on shutdown")
		ctlPar     = flag.Int("ctl-parallel", 0,
			"controller plan-phase workers (0/1 = serial, -1 = all CPUs); decisions are identical at any value")
		drAt     = flag.Float64("dr-at", 0, "demand-response event start, simulated minutes (0 = none)")
		drDepth  = flag.Float64("dr-depth", 0.2, "demand-response curtailment depth, fraction of budget")
		drDwell  = flag.Float64("dr-dwell", 60, "demand-response dwell, simulated minutes")
		drRamp   = flag.Float64("dr-ramp", 0.02, "budget ramp limit per tick as fraction of base (0 = cliff)")
		svcUsers = flag.Int("service-users", 0,
			"simulated users of a pinned interactive service (0 = none); adds service_* metric families")
		svcRPS       = flag.Float64("service-rps-per-user", 0.05, "per-user request rate (req/s)")
		svcInstances = flag.Int("service-instances", 4, "service instances pinned across the fleet")
		svcCtrs      = flag.Int("service-containers", 8, "containers reserved per service instance")
	)
	flag.Parse()
	cfg := runConfig{
		addr: *addr, tick: *tick, rows: *rows, rowServers: *rowServers,
		target: *target, ro: *ro, ampere: *ampere, seed: *seed,
		obs: *obsOn, pprof: *pprofOn, journalCap: *journalCap, journalOut: *journalOut,
		ctlParallel: *ctlPar,
		drAt:        *drAt, drDepth: *drDepth, drDwell: *drDwell, drRamp: *drRamp,
		svcUsers: *svcUsers, svcRPSPerUser: *svcRPS,
		svcInstances: *svcInstances, svcContainers: *svcCtrs,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "powermon:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr        string
	tick        time.Duration
	rows        int
	rowServers  int
	target      float64
	ro          float64
	ampere      bool
	seed        uint64
	obs         bool
	pprof       bool
	journalCap  int
	journalOut  string
	ctlParallel int
	drAt        float64
	drDepth     float64
	drDwell     float64
	drRamp      float64
	// svcUsers > 0 pins an interactive service across the fleet (see the
	// -service-users flag); all four knobs are part of the stack identity
	// the /whatif offline rebuild reproduces.
	svcUsers      int
	svcRPSPerUser float64
	svcInstances  int
	svcContainers int
}

type status struct {
	mu         sync.Mutex
	SimTime    string    `json:"sim_time"`
	SimMinutes int64     `json:"sim_minutes"`
	RowPowerW  []float64 `json:"row_power_w"`
	BudgetW    float64   `json:"row_budget_w"`
	// EffectiveW is each row's currently enforced budget — it departs from
	// BudgetW while a demand-response event is in force.
	EffectiveW []float64 `json:"effective_budget_w,omitempty"`
	Frozen     []int     `json:"frozen_per_row"`
	Violations []int64   `json:"violations_per_row"`
}

// stack is one fully wired powermon simulation: rig, optional controller,
// observational breakers. buildStack produces it for both the live server and
// the /whatif offline replays — identical construction and start order is
// what makes an offline rebuild reproduce the live journal byte-for-byte
// (the whatif witness-verification contract).
type stack struct {
	rig      *experiment.Rig
	ctl      *core.Controller
	breakers []*breaker.Breaker
	budget   float64
	svc      *service.Service // nil unless -service-users > 0
}

// buildStack wires the whole simulation up to (and including) controller
// start. reg may be nil (the offline-replay case: metrics unregistered but
// journal still fed); journal may be nil only when cfg.obs is false.
func buildStack(cfg runConfig, reg *obs.Registry, journal *obs.Journal) (*stack, error) {
	spec := cluster.DefaultSpec()
	spec.Rows = cfg.rows
	spec.ServersPerRack = 20
	spec.RacksPerRow = cfg.rowServers / spec.ServersPerRack
	if spec.RacksPerRow < 1 {
		return nil, fmt.Errorf("row-servers %d too small", cfg.rowServers)
	}

	dd := workload.DefaultDurations()
	perServer := workload.RateForPowerFraction(cfg.target, spec.IdlePowerW, spec.RatedPowerW,
		spec.Containers, dd.Mean()*0.95, 1.0)
	product := workload.DefaultProduct("mixed", perServer*float64(spec.TotalServers()))

	rig, err := experiment.NewRig(experiment.RigConfig{
		Seed:      cfg.seed,
		Cluster:   spec,
		Products:  []workload.Product{product},
		Retention: 7 * 24 * 60, // one week of minutes per series
	})
	if err != nil {
		return nil, err
	}

	// Observability wiring: one registry for every subsystem, one journal
	// for control decisions. With -obs=false both stay nil and every
	// Instrument call below is a no-op.
	if cfg.obs {
		rig.Mon.Instrument(reg)
		rig.DB.Instrument(reg)
		rig.Sched.Instrument(reg, journal)
	}

	// Optional interactive service: cfg.svcInstances hosts at even stride
	// across the fleet, each with reserved containers, serving cfg.svcUsers
	// users as steady/diurnal/flash client classes. Reservations land before
	// StartBase so placement stays deterministic, which keeps the /whatif
	// offline rebuild byte-identical to the live run.
	var svc *service.Service
	if cfg.svcUsers > 0 {
		total := spec.TotalServers()
		if cfg.svcInstances < 1 || cfg.svcInstances > total {
			return nil, fmt.Errorf("service-instances %d outside [1,%d]", cfg.svcInstances, total)
		}
		stride := total / cfg.svcInstances
		hosts := make([]*cluster.Server, 0, cfg.svcInstances)
		for i := 0; i < cfg.svcInstances; i++ {
			sv := rig.Cluster.Servers[i*stride]
			if err := rig.Sched.Reserve(sv.ID, cfg.svcContainers, float64(cfg.svcContainers)); err != nil {
				return nil, err
			}
			hosts = append(hosts, sv)
		}
		svc, err = service.New(rig.Eng, cfg.seed, service.Config{
			Classes: service.DefaultClasses(cfg.svcUsers, cfg.svcRPSPerUser),
		}, hosts)
		if err != nil {
			return nil, err
		}
		if cfg.obs {
			svc.Instrument(reg)
		}
		svc.Start()
	}
	rig.StartBase()

	budget := spec.RowRatedPowerW() / (1 + cfg.ro)

	// The controller's dependencies go through an empty-plan chaos injector:
	// with no faults it is a deterministic pass-through, but its counters
	// register on the scrape so operators watch the same metric families in
	// drills and in production. Real fault plans are injected by the chaos
	// harness (internal/chaos, cmd/drill).
	reader := core.PowerReader(rig.Mon)
	api := core.FreezeAPI(rig.Sched)
	if cfg.obs {
		inj, err := chaos.New(rig.Eng, chaos.Plan{Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		inj.Instrument(reg)
		reader = inj.WrapReader(rig.Mon)
		api = inj.WrapAPI(rig.Sched)
	}

	// An optional demand-response event, identical for every row: dip at
	// dr-at for dr-dwell minutes, ramp-limited by dr-ramp.
	var sched *core.BudgetSchedule
	if cfg.drAt > 0 {
		if cfg.drDepth <= 0 || cfg.drDepth >= 1 {
			return nil, fmt.Errorf("dr-depth %v outside (0,1)", cfg.drDepth)
		}
		if cfg.drDwell <= 0 {
			return nil, fmt.Errorf("dr-dwell %v must be positive", cfg.drDwell)
		}
		sched = &core.BudgetSchedule{
			RampFrac: cfg.drRamp,
			Steps: []core.BudgetStep{
				{At: minutesToTime(cfg.drAt), BudgetW: budget * (1 - cfg.drDepth)},
				{At: minutesToTime(cfg.drAt + cfg.drDwell), BudgetW: budget},
			},
		}
		if err := sched.Validate(budget); err != nil {
			return nil, err
		}
	}

	var controller *core.Controller
	if cfg.ampere {
		domains := make([]core.Domain, cfg.rows)
		for r := 0; r < cfg.rows; r++ {
			ids := make([]cluster.ServerID, 0, cfg.rowServers)
			for _, sv := range rig.Cluster.Row(r) {
				ids = append(ids, sv.ID)
			}
			domains[r] = core.Domain{
				Name: fmt.Sprintf("row/%d", r), Servers: ids, BudgetW: budget,
				Kr: experiment.DefaultKr, Schedule: sched,
			}
		}
		ccfg := core.DefaultConfig()
		ccfg.Parallel = cfg.ctlParallel
		controller, err = core.New(rig.Eng, reader, api, ccfg, domains)
		if err != nil {
			return nil, err
		}
		controller.Instrument(reg, journal)
	} else if sched != nil {
		return nil, fmt.Errorf("dr-at needs -ampere: the schedule is enforced by the controller")
	}

	// Observational per-row breakers: they evaluate the real trip curve and
	// export heat/trip metrics, but carry no OnTrip callback, so an overload
	// is visible on /metrics without blast-radius consequences in the sim.
	var breakers []*breaker.Breaker
	if cfg.obs {
		for r := 0; r < cfg.rows; r++ {
			b, err := breaker.New(rig.Eng, breaker.DefaultConfig(budget), rig.Cluster.Row(r))
			if err != nil {
				return nil, err
			}
			b.Instrument(reg, fmt.Sprintf("row/%d", r))
			b.Start()
			breakers = append(breakers, b)
		}
	}
	if controller != nil {
		// The relay on a curtailed feed protects the reduced limit, not the
		// nameplate one, so breakers follow every effective-budget movement.
		controller.OnBudgetChange(func(bc core.BudgetChange) {
			if bc.Domain < len(breakers) {
				_ = breakers[bc.Domain].SetBudget(bc.NewW)
			}
		})
		controller.Start()
	}
	return &stack{rig: rig, ctl: controller, breakers: breakers, budget: budget, svc: svc}, nil
}

func run(cfg runConfig) error {
	var (
		reg     *obs.Registry
		journal *obs.Journal
	)
	if cfg.obs {
		reg = obs.NewRegistry()
		journal = obs.NewJournal(cfg.journalCap)
		journal.Instrument(reg)
	}
	sk, err := buildStack(cfg, reg, journal)
	if err != nil {
		return err
	}
	rig, controller, budget := sk.rig, sk.ctl, sk.budget

	st := &status{BudgetW: budget}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Simulation loop: one simulated minute per tick. The engine is
	// single-threaded; only the thread-safe TSDB, registry, journal and the
	// mutex-guarded status snapshot are shared with HTTP handlers.
	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		ticker := time.NewTicker(cfg.tick)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			next := rig.Eng.Now().Add(sim.Minute)
			if err := rig.Run(next); err != nil {
				log.Printf("simulation error: %v", err)
				return
			}
			st.mu.Lock()
			st.SimTime = rig.Eng.Now().String()
			st.SimMinutes = rig.Eng.Now().Minute()
			st.RowPowerW = st.RowPowerW[:0]
			st.EffectiveW = st.EffectiveW[:0]
			st.Frozen = st.Frozen[:0]
			st.Violations = st.Violations[:0]
			for r := 0; r < cfg.rows; r++ {
				p, _ := rig.Mon.RowPower(r)
				st.RowPowerW = append(st.RowPowerW, p)
				if controller != nil {
					st.EffectiveW = append(st.EffectiveW, controller.EffectiveBudget(r))
					st.Frozen = append(st.Frozen, controller.FrozenCount(r))
					st.Violations = append(st.Violations, controller.Stats(r).Violations)
				}
			}
			st.mu.Unlock()
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", rig.DB.Handler())
	if controller != nil {
		// The controller's operator API (per-domain status and health) is
		// internally locked, so it serves live alongside the running
		// simulation goroutine.
		h := controller.Handler()
		mux.Handle("/domains", h)
		mux.Handle("/domains/", h)
		mux.Handle("/healthz", h)
	}
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	if journal != nil {
		mux.Handle("/events", journal.Handler())
	}
	if journal != nil && controller != nil {
		// Counterfactual replays: fork the live run at a journal event and
		// re-run it offline with an alternative policy (see whatif.go).
		ws := &whatifServer{
			cfg:     cfg,
			journal: journal,
			met:     whatif.NewMetrics(reg),
			now: func() sim.Time {
				st.mu.Lock()
				defer st.mu.Unlock()
				return minutesToTime(float64(st.SimMinutes))
			},
		}
		mux.HandleFunc("GET /whatif", ws.handle)
	}
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		buf, err := json.Marshal(st)
		st.mu.Unlock()
		if err != nil {
			http.Error(w, "response encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(buf, '\n'))
	})

	srv := &http.Server{Addr: cfg.addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("powermon: serving %d×%d servers on %s (budget %.0f W/row, ampere=%v, obs=%v)",
		cfg.rows, cfg.rowServers, cfg.addr, budget, cfg.ampere, cfg.obs)

	select {
	case err := <-errc:
		// The listener died on its own; nothing to drain.
		stop()
		<-simDone
		return err
	case <-ctx.Done():
	}

	log.Printf("powermon: shutting down")
	<-simDone
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("powermon: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return flushJournal(journal, cfg.journalOut)
}

// minutesToTime converts a (possibly fractional) simulated-minute offset to
// an absolute sim.Time.
func minutesToTime(m float64) sim.Time { return sim.Time(m * float64(sim.Minute)) }

// flushJournal writes the journal to path as JSONL. A nil journal or empty
// path is a no-op, so plain Ctrl-C exits stay silent.
func flushJournal(journal *obs.Journal, path string) error {
	if journal == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := journal.WriteJSONL(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	log.Printf("powermon: journal flushed to %s (%d events)", path, journal.Len())
	return nil
}
