package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/whatif"
)

// maxWhatifMinutes bounds one /whatif replay: a counterfactual rebuilds the
// simulation from genesis, so its cost grows with the live run's age, not
// with the fork-to-end window.
const maxWhatifMinutes = 48 * 60

// whatifServer serves GET /whatif: fork the live run at a journal event and
// replay it offline with an alternative policy, returning the scored diff.
//
//	curl 'http://localhost:8080/whatif'                        # fork at first budget-change, ramped-budget alt
//	curl 'http://localhost:8080/whatif?event=120&alt=policy=coldest,ramp=0.02'
//	curl 'http://localhost:8080/whatif?event=120&horizon=90'   # replay 90 min past the fork
//
// The replay runs on a freshly built offline copy of the stack (same seed and
// wiring), so the live simulation never pauses; one replay runs at a time
// (409 when busy).
type whatifServer struct {
	mu      sync.Mutex // serializes replays; TryLock → 409
	cfg     runConfig
	journal *obs.Journal
	met     *whatif.Metrics
	now     func() sim.Time // live simulation time (minute-aligned)
}

// builder returns a whatif.Builder that reconstructs the live stack offline,
// running to end. The offline journal is sized to retain every event, so
// seqs line up with the live journal even after the live ring has evicted.
func (ws *whatifServer) builder(end sim.Time) whatif.Builder {
	cfg := ws.cfg
	return func() (*whatif.Instance, error) {
		minutes := int(end / sim.Time(sim.Minute))
		journal := obs.NewJournal((cfg.rows + 2) * (minutes + 4) * 2)
		sk, err := buildStack(cfg, nil, journal)
		if err != nil {
			return nil, err
		}
		breakers := make([]whatif.NamedBreaker, len(sk.breakers))
		for r := range sk.breakers {
			breakers[r] = whatif.NamedBreaker{Name: fmt.Sprintf("row/%d", r), B: sk.breakers[r]}
		}
		return &whatif.Instance{
			Eng:      sk.rig.Eng,
			Journal:  journal,
			Ctl:      sk.ctl,
			Cluster:  sk.rig.Cluster,
			Mon:      sk.rig.Mon,
			Breakers: breakers,
			End:      end,
			Interval: sim.Minute,
			Seed:     cfg.seed,
			ConfigTag: fmt.Sprintf("powermon seed=%d rows=%dx%d target=%g ro=%g dr=%g/%g/%g/%g ctlpar=%d",
				cfg.seed, cfg.rows, cfg.rowServers, cfg.target, cfg.ro,
				cfg.drAt, cfg.drDepth, cfg.drDwell, cfg.drRamp, cfg.ctlParallel),
			RunUntil: sk.rig.Run,
			KPIs: func() map[string]float64 {
				s := sk.rig.Sched.Stats()
				return map[string]float64{
					"jobs_submitted": float64(s.Submitted),
					"jobs_placed":    float64(s.Placed),
					"jobs_completed": float64(s.Completed),
					"jobs_queued":    float64(s.Queued),
					"jobs_overflow":  float64(s.Overflowed),
					"jobs_killed":    float64(s.Killed),
				}
			},
		}, nil
	}
}

// whatifError is the endpoint's JSON error shape.
func whatifError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (ws *whatifServer) handle(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()

	// Locate the fork event in the live journal.
	var fork obs.Event
	if s := q.Get("event"); s != "" {
		seq, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			whatifError(w, http.StatusBadRequest, "bad event %q: %v", s, err)
			return
		}
		total, oldest := ws.journal.Total(), ws.journal.OldestSeq()
		if seq >= total {
			whatifError(w, http.StatusNotFound, "event %d not yet journaled (total %d)", seq, total)
			return
		}
		if seq < oldest {
			whatifError(w, http.StatusGone, "event %d evicted from the journal ring (oldest retained %d)", seq, oldest)
			return
		}
		fork = ws.journal.Since(seq)[0]
	} else {
		found := false
		for _, ev := range ws.journal.Since(0) {
			if ev.Action == "budget-change" {
				fork, found = ev, true
				break
			}
		}
		if !found {
			whatifError(w, http.StatusNotFound, "no budget-change event in the retained journal; pass ?event=N")
			return
		}
	}

	patch, err := whatif.ParsePatch(q.Get("alt"))
	if err != nil {
		whatifError(w, http.StatusBadRequest, "%v", err)
		return
	}

	forkT := sim.Time(fork.SimMS)
	end := ws.now()
	if s := q.Get("horizon"); s != "" {
		m, err := strconv.Atoi(s)
		if err != nil || m < 1 {
			whatifError(w, http.StatusBadRequest, "bad horizon %q (want minutes ≥ 1)", s)
			return
		}
		if capped := forkT.Add(sim.Duration(m) * sim.Minute); capped < end {
			end = capped
		}
	}
	if end <= forkT {
		whatifError(w, http.StatusUnprocessableEntity,
			"live simulation (%s) has not advanced past the fork event (%s)", end, forkT)
		return
	}
	if end > sim.Time(maxWhatifMinutes)*sim.Time(sim.Minute) {
		whatifError(w, http.StatusUnprocessableEntity,
			"replay would re-simulate %s from genesis, above the %d-minute limit", end, maxWhatifMinutes)
		return
	}

	if !ws.mu.TryLock() {
		whatifError(w, http.StatusConflict, "a replay is already running; retry shortly")
		return
	}
	defer ws.mu.Unlock()

	eng := &whatif.Engine{Build: ws.builder(end), Met: ws.met}
	fact, err := eng.Baseline(forkT)
	if err != nil {
		whatifError(w, http.StatusInternalServerError, "factual replay: %v", err)
		return
	}
	alt, err := eng.Replay(fact.Snap, patch)
	if err != nil {
		whatifError(w, http.StatusInternalServerError, "counterfactual replay: %v", err)
		return
	}
	rep := whatif.Diff(fact.View(sim.Minute), alt.View(sim.Minute), fork.SimMS, patch.String())

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Report        *whatif.Report `json:"report"`
		ForkSeq       uint64         `json:"fork_seq"`
		EndMS         int64          `json:"end_ms"`
		SnapshotBytes int            `json:"snapshot_bytes"`
		FactualSecs   float64        `json:"factual_replay_seconds"`
		AltSecs       float64        `json:"alt_replay_seconds"`
	}{rep, fork.Seq, int64(end), len(fact.SnapBytes), fact.Elapsed.Seconds(), alt.Elapsed.Seconds()})
}
