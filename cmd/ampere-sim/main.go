// Command ampere-sim runs one simulated data-center scenario and prints a
// summary: per-row power statistics, violations, breaker state, scheduler
// activity, and controller behaviour. Scenarios come from flags or from a
// JSON file (see internal/scenario.Spec for the schema):
//
//	ampere-sim -rows 2 -row-servers 400 -hours 24 -target 0.76 -ro 0.25 -ampere
//	ampere-sim -config scenario.json
//
// cmd/ampere-exp runs the paper's specific experiments; this tool is for
// free-form exploration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

func main() {
	var (
		config     = flag.String("config", "", "JSON scenario file (overrides the other flags)")
		rows       = flag.Int("rows", 1, "number of rows")
		rowServers = flag.Int("row-servers", 400, "servers per row (multiple of 20)")
		hours      = flag.Int("hours", 24, "simulated hours (after a 2h warmup)")
		target     = flag.Float64("target", 0.74, "steady row power target as a fraction of rated")
		ro         = flag.Float64("ro", 0.25, "over-provisioning ratio (row budget = rated/(1+ro))")
		ampere     = flag.Bool("ampere", false, "enable the Ampere controller")
		capping    = flag.Bool("capping", false, "enable DVFS power capping")
		breaker    = flag.Bool("breaker", false, "enable PDU circuit breakers (trips black out the row)")
		kr         = flag.Float64("kr", 0, "control model gradient (0 = calibrated default)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		policy     = flag.String("policy", "random-fit", "placement policy: random-fit|least-loaded|best-fit|round-robin")
		chooser    = flag.String("row-chooser", "proportional", "row selection: proportional|balance-rows|concentrate-rows")
		amplitude  = flag.Float64("amplitude", 0.35, "diurnal amplitude of the workload")
	)
	flag.Parse()

	var spec *scenario.Spec
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fatal(err)
		}
		spec, err = scenario.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		spec = &scenario.Spec{
			Seed:       *seed,
			Rows:       *rows,
			RowServers: *rowServers,
			Hours:      *hours,
			TargetFrac: *target,
			Amplitude:  *amplitude,
			RO:         *ro,
			Ampere:     *ampere,
			Capping:    *capping,
			Breaker:    *breaker,
			Kr:         *kr,
			Policy:     *policy,
			RowChooser: *chooser,
		}
	}

	built, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	if err := built.Run(); err != nil {
		fatal(err)
	}
	built.Report(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampere-sim:", err)
	os.Exit(1)
}
