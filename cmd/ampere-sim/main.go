// Command ampere-sim runs one simulated data-center scenario and prints a
// summary: per-row power statistics, violations, breaker state, scheduler
// activity, and controller behaviour. Scenarios come from flags or from a
// JSON file (see internal/scenario.Spec for the schema):
//
//	ampere-sim -rows 2 -row-servers 400 -hours 24 -target 0.76 -ro 0.25 -ampere
//	ampere-sim -config scenario.json
//	ampere-sim -ampere -replicate 8 -parallel 4
//
// -replicate K repeats the scenario K times with seeds seed..seed+K−1 and
// -parallel N fans the replicates across up to N workers (default: the CPU
// count; 1 = serial). Each replicate builds its own isolated simulation and
// its report is buffered, so output appears in seed order and is
// byte-identical at any -parallel value.
//
// cmd/ampere-exp runs the paper's specific experiments; this tool is for
// free-form exploration.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/runner"
	"repro/internal/scenario"
)

func main() {
	var (
		config     = flag.String("config", "", "JSON scenario file (overrides the other flags)")
		rows       = flag.Int("rows", 1, "number of rows")
		rowServers = flag.Int("row-servers", 400, "servers per row (multiple of 20)")
		hours      = flag.Int("hours", 24, "simulated hours (after a 2h warmup)")
		target     = flag.Float64("target", 0.74, "steady row power target as a fraction of rated")
		ro         = flag.Float64("ro", 0.25, "over-provisioning ratio (row budget = rated/(1+ro))")
		ampere     = flag.Bool("ampere", false, "enable the Ampere controller")
		capping    = flag.Bool("capping", false, "enable DVFS power capping")
		breaker    = flag.Bool("breaker", false, "enable PDU circuit breakers (trips black out the row)")
		kr         = flag.Float64("kr", 0, "control model gradient (0 = calibrated default)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		policy     = flag.String("policy", "random-fit", "placement policy: random-fit|least-loaded|best-fit|round-robin")
		chooser    = flag.String("row-chooser", "proportional", "row selection: proportional|balance-rows|concentrate-rows")
		amplitude  = flag.Float64("amplitude", 0.35, "diurnal amplitude of the workload")
		replicate  = flag.Int("replicate", 1, "run K replicates with seeds seed..seed+K-1")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker count for replicates (1 = serial)")
	)
	flag.Parse()

	var spec *scenario.Spec
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fatal(err)
		}
		spec, err = scenario.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		spec = &scenario.Spec{
			Seed:       *seed,
			Rows:       *rows,
			RowServers: *rowServers,
			Hours:      *hours,
			TargetFrac: *target,
			Amplitude:  *amplitude,
			RO:         *ro,
			Ampere:     *ampere,
			Capping:    *capping,
			Breaker:    *breaker,
			Kr:         *kr,
			Policy:     *policy,
			RowChooser: *chooser,
		}
	}

	k := *replicate
	if k < 1 {
		k = 1
	}
	units := make([]runner.Unit[[]byte], k)
	for i := 0; i < k; i++ {
		i := i
		units[i] = runner.Unit[[]byte]{Name: fmt.Sprintf("replicate %d", i), Run: func() ([]byte, error) {
			// Shallow copy: Build never mutates the spec and replicates only
			// reseed it, so the copies stay independent.
			sp := *spec
			sp.Seed = spec.Seed + uint64(i)
			built, err := sp.Build()
			if err != nil {
				return nil, err
			}
			if err := built.Run(); err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if k > 1 {
				fmt.Fprintf(&buf, "=== replicate %d (seed %d) ===\n", i, sp.Seed)
			}
			built.Report(&buf)
			return buf.Bytes(), nil
		}}
	}
	outs, err := runner.Run(units, runner.Options{Workers: *parallel})
	for _, b := range outs {
		os.Stdout.Write(b)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampere-sim:", err)
	os.Exit(1)
}
