// Command ampere-ctl is the operator's query tool against a running powermon
// (or any server exposing the monitor's RESTful API):
//
//	ampere-ctl -addr http://localhost:8080 series
//	ampere-ctl -addr http://localhost:8080 latest row/0
//	ampere-ctl -addr http://localhost:8080 query row/0 -last 30
//	ampere-ctl -addr http://localhost:8080 status
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/sim"
	"repro/internal/tsdb"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "powermon base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	client := tsdb.NewClient(*addr)
	var err error
	switch args[0] {
	case "series":
		err = series(client)
	case "latest":
		if len(args) < 2 {
			usage()
		}
		err = latest(client, args[1])
	case "query":
		if len(args) < 2 {
			usage()
		}
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		last := fs.Int("last", 0, "only the last N minutes")
		if err := fs.Parse(args[2:]); err != nil {
			fatal(err)
		}
		err = query(client, args[1], *last)
	case "status":
		err = status(*addr)
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ampere-ctl [-addr URL] series | latest <name> | query <name> [-last N] | status")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ampere-ctl:", err)
	os.Exit(1)
}

func series(c *tsdb.Client) error {
	names, err := c.Names()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func latest(c *tsdb.Client, name string) error {
	p, err := c.Latest(name)
	if err != nil {
		return err
	}
	fmt.Printf("%s  %v  %.1f W\n", name, p.T, p.V)
	return nil
}

func query(c *tsdb.Client, name string, lastMinutes int) error {
	var pts []tsdb.Point
	var err error
	if lastMinutes > 0 {
		p, lerr := c.Latest(name)
		if lerr != nil {
			return lerr
		}
		from := p.T.Add(-sim.Duration(lastMinutes) * sim.Minute)
		pts, err = c.Query(name, from, p.T)
	} else {
		pts, err = c.QueryAll(name)
	}
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%v  %.1f\n", p.T, p.V)
	}
	return nil
}

// status fetches powermon's /status endpoint (free-form JSON, printed raw).
func status(addr string) error {
	resp, err := http.Get(addr + "/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /status: %s", resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
