package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/whatif"
)

// why implements `ampere-trace why`: fork the gridstorm run at a journal
// event and score a counterfactual policy against the factual outcome.
func why(args []string) error {
	fs := flag.NewFlagSet("why", flag.ExitOnError)
	event := fs.Int64("event", -1,
		"journal event seq to fork at (-1: the first budget-change, i.e. the dip onset)")
	alt := fs.String("alt", "",
		"counterfactual patch, e.g. 'policy=coldest,et=ewma,unfreeze=headroom,ramp=0.02' "+
			"(keys: policy, et, et-percentile, et-alpha, et-band, ramp, horizon, max-freeze, "+
			"rstable, unfreeze, headroom-trigger, headroom-step); 'self' replays the factual policy; default: ramped budget")
	regime := fs.String("regime", "cliff", "factual gridstorm regime: cliff|ramp")
	full := fs.Bool("full", false, "paper-scale gridstorm (100k servers); default is the quick 320-server configuration")
	seed := fs.Uint64("seed", 0, "override the scenario seed (0 = scenario default)")
	ctlParallel := fs.Int("ctl-parallel", 0, "controller plan-phase workers (0/1 = serial; output is identical at any value)")
	jsonOut := fs.Bool("json", false, "emit the diff report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.QuickGridstorm()
	if *full {
		cfg = experiment.DefaultGridstorm()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.CtlParallel = *ctlParallel
	var ramped bool
	switch *regime {
	case "cliff":
	case "ramp":
		ramped = true
	default:
		return fmt.Errorf("unknown regime %q (cliff|ramp)", *regime)
	}

	eng := &whatif.Engine{Build: experiment.GridstormBuilder(cfg, ramped)}

	// Locate the fork event in a full factual run; determinism makes this an
	// exact index of the journal.
	scout, err := eng.Baseline(0)
	if err != nil {
		return err
	}
	var fork *obs.Event
	if *event >= 0 {
		for i := range scout.Events {
			if scout.Events[i].Seq == uint64(*event) {
				fork = &scout.Events[i]
				break
			}
		}
		if fork == nil {
			return fmt.Errorf("event %d not in the journal (run has %d events, seq 0..%d)",
				*event, len(scout.Events), len(scout.Events)-1)
		}
	} else {
		for i := range scout.Events {
			if scout.Events[i].Action == "budget-change" {
				fork = &scout.Events[i]
				break
			}
		}
		if fork == nil {
			return fmt.Errorf("no budget-change event to fork at; pass -event N")
		}
	}

	patchStr := *alt
	switch patchStr {
	case "":
		patchStr = fmt.Sprintf("ramp=%g", cfg.DipDepth/float64(cfg.RampMinutes))
	case "self":
		patchStr = ""
	}
	patch, err := whatif.ParsePatch(patchStr)
	if err != nil {
		return err
	}

	fact, err := eng.Baseline(sim.Time(fork.SimMS))
	if err != nil {
		return err
	}
	altRes, err := eng.Replay(fact.Snap, patch)
	if err != nil {
		return err
	}
	rep := whatif.Diff(fact.View(sim.Minute), altRes.View(sim.Minute), fork.SimMS, patch.String())

	fmt.Fprintf(os.Stderr, "why: factual replay %.2fs, counterfactual replay %.2fs, snapshot %d bytes\n",
		fact.Elapsed.Seconds(), altRes.Elapsed.Seconds(), len(fact.SnapBytes))
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("gridstorm/%s, fork at event seq=%d (%s, domain %s)\n",
		*regime, fork.Seq, fork.SimTime, fork.Domain)
	fmt.Print(rep.Format())
	return nil
}
