// Command ampere-trace records, replays, and explains row power traces.
//
//	ampere-trace record -out row.csv -hours 12 -target 0.78
//	ampere-trace replay -in row.csv [-ampere] [-ro 0.25]
//	ampere-trace why [-event N] [-alt policy=...] [-regime cliff|ramp] [-json]
//
// record simulates a diurnal day on one row and writes the per-minute power
// trace as CSV; replay converts a trace (from record, or any external export
// with the same layout) back into an arrival-rate schedule, re-simulates the
// row along that trajectory, and reports power/violation statistics —
// optionally under Ampere control with an emulated over-provisioning ratio.
//
// why answers the operator's counterfactual question on the gridstorm
// scenario: snapshot the run at journal event N (default: the dip-onset
// budget change), fork it with an alternative policy (default: a ramped
// budget), replay against the same seeded workload and chaos streams, and
// print the scored diff — trips avoided, violation ticks avoided, capacity
// minutes gained, and per-domain divergence points. See OPERATIONS.md §13.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "why":
		err = why(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ampere-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ampere-trace record|replay|why [flags]")
	os.Exit(2)
}

const (
	rowServers = 160
	warmup     = sim.Hour
)

func rowSpec() cluster.Spec {
	spec := cluster.DefaultSpec()
	spec.ServersPerRack = 20
	spec.RacksPerRow = rowServers / spec.ServersPerRack
	return spec
}

func meanDur() float64 { return workload.DefaultDurations().Mean() * 0.95 }

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "trace.csv", "output CSV path")
	hours := fs.Int("hours", 12, "hours to record")
	target := fs.Float64("target", 0.78, "mean power target (fraction of rated)")
	amplitude := fs.Float64("amplitude", 0.35, "diurnal amplitude")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := rowSpec()
	perServer := workload.RateForPowerFraction(*target, spec.IdlePowerW, spec.RatedPowerW,
		spec.Containers, meanDur(), 1.0)
	prod := workload.DefaultProduct("recorded", perServer*float64(spec.TotalServers()))
	prod.DiurnalAmplitude = *amplitude

	rig, err := experiment.NewRig(experiment.RigConfig{
		Seed: *seed, Cluster: spec, Products: []workload.Product{prod},
	})
	if err != nil {
		return err
	}
	rig.StartBase()
	end := sim.Time(warmup) + sim.Time(*hours)*sim.Time(sim.Hour)
	if err := rig.Run(end); err != nil {
		return err
	}
	tr, err := trace.FromTSDB(rig.DB, []string{monitor.SeriesRow(0)}, sim.Time(warmup), end, sim.Minute)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d minutes of %s to %s\n", tr.Len(), monitor.SeriesRow(0), *out)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.csv", "input CSV path")
	ampere := fs.Bool("ampere", false, "control the row with Ampere")
	ro := fs.Float64("ro", 0.25, "over-provisioning ratio for the budget")
	kr := fs.Float64("kr", experiment.DefaultKr, "control model gradient")
	seed := fs.Uint64("seed", 2, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	tr, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	spec := rowSpec()
	sched, err := trace.RateSchedule(tr.Series(0), spec.TotalServers(), spec, meanDur(), 1.0)
	if err != nil {
		return err
	}
	prod := workload.Product{Name: "replay", Schedule: sched, ScheduleStart: sim.Time(warmup)}
	rig, err := experiment.NewRig(experiment.RigConfig{
		Seed: *seed, Cluster: spec, Products: []workload.Product{prod},
	})
	if err != nil {
		return err
	}
	rig.StartBase()

	budget := spec.RowRatedPowerW() / (1 + *ro)
	var controller *core.Controller
	if *ampere {
		ids := make([]cluster.ServerID, spec.TotalServers())
		for i := range ids {
			ids[i] = cluster.ServerID(i)
		}
		controller, err = core.New(rig.Eng, rig.Mon, rig.Sched, core.DefaultConfig(),
			[]core.Domain{{Name: "row/0", Servers: ids, BudgetW: budget, Kr: *kr}})
		if err != nil {
			return err
		}
		controller.Start()
	}
	end := sim.Time(warmup) + sim.Time(tr.Len())*sim.Time(sim.Minute)
	if err := rig.Run(end); err != nil {
		return err
	}

	vals := rig.DB.Values(monitor.SeriesRow(0), sim.Time(warmup), end-1)
	var s stats.Summary
	violations := 0
	for _, v := range vals {
		s.Add(v / budget)
		if v > budget {
			violations++
		}
	}
	fmt.Printf("replayed %d minutes from %s (budget %.0f W, rO %.2f, ampere=%v)\n",
		len(vals), *in, budget, *ro, *ampere)
	fmt.Printf("  power mean/max of budget: %.3f / %.3f\n", s.Mean(), s.Max())
	fmt.Printf("  violations: %d of %d minutes\n", violations, len(vals))
	if controller != nil {
		st := controller.Stats(0)
		fmt.Printf("  ampere: u mean/max %.3f/%.3f, %d freeze ops\n", st.UMean(), st.UMax, st.FreezeOps)
	}
	return nil
}
