// Command ampere-load drives a running powermon daemon with open-loop HTTP
// traffic and reports per-endpoint tail latencies:
//
//	ampere-load -base http://localhost:9090 -rps 200 -duration 30s
//	ampere-load -base http://localhost:9090 -rps 500 -mix metrics=5,query=3,healthz=2
//
// The arrival process is Poisson at the configured aggregate rate, split
// across endpoints by the -mix weights, and open-loop: arrivals follow a
// pre-drawn absolute schedule, so a slow daemon faces queueing (and sheds
// drops at the in-flight limit) instead of silently throttling the offered
// load. Exit status is 1 when any request errored — suitable as a smoke
// gate for the serving path. See OPERATIONS.md §15.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/load"
)

// endpoints maps mix names onto powermon paths. query/latest hit the tsdb
// read path for the default dc series; the rest are the operational surface.
var endpoints = map[string]string{
	"metrics": "/metrics",
	"healthz": "/healthz",
	"status":  "/status",
	"domains": "/domains",
	"events":  "/events",
	"series":  "/series",
	"query":   "/query?name=dc&from=0",
	"latest":  "/latest?name=dc",
}

func main() {
	var (
		base     = flag.String("base", "http://localhost:9090", "powermon base URL")
		rps      = flag.Float64("rps", 100, "aggregate open-loop arrival rate (req/s)")
		duration = flag.Duration("duration", 10*time.Second, "length of the arrival schedule")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		inflight = flag.Int("inflight", 512, "max concurrent requests (excess arrivals drop)")
		seed     = flag.Uint64("seed", 1, "arrival-schedule seed")
		mix      = flag.String("mix", "metrics=3,query=3,healthz=2,status=1,latest=1",
			"endpoint=weight list; endpoints: "+strings.Join(endpointNames(), ","))
	)
	flag.Parse()

	targets, err := parseMix(*base, *mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ampere-load:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := load.Run(ctx, load.Config{
		Targets:     targets,
		RPS:         *rps,
		Duration:    *duration,
		Timeout:     *timeout,
		MaxInFlight: *inflight,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ampere-load:", err)
		os.Exit(2)
	}
	fmt.Print(res.Format())
	for _, tr := range res.Targets {
		if tr.Errors > 0 {
			os.Exit(1)
		}
	}
}

func endpointNames() []string {
	names := make([]string, 0, len(endpoints))
	for n := range endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func parseMix(base, mix string) ([]load.Target, error) {
	var out []load.Target
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1.0
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			name = part[:eq]
			w, err := strconv.ParseFloat(part[eq+1:], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad weight in mix entry %q", part)
			}
			weight = w
		}
		path, ok := endpoints[name]
		if !ok {
			return nil, fmt.Errorf("unknown endpoint %q (have %s)", name, strings.Join(endpointNames(), ","))
		}
		out = append(out, load.Target{Name: name, URL: base + path, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return out, nil
}
