// Command ampere-exp regenerates any table or figure from the paper's
// evaluation section against the simulated data center.
//
// Usage:
//
//	ampere-exp -exp fig1|fig2|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|
//	                table2|table3|spread|outage|ablations|all
//	           [-quick] [-seed N] [-out dir]
//
// -quick shrinks cluster sizes and time spans for a fast pass (the same
// configurations the test suite and benchmarks use); the default sizes
// follow the paper (400-server rows, 24-hour spans) and take a few minutes
// in total. -out additionally writes plot-ready CSV series for the figure
// experiments into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig12, table2, table3, all)")
	quick := flag.Bool("quick", false, "shrunken fast configuration")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = per-experiment default)")
	out := flag.String("out", "", "directory to also write plot-ready CSV series into")
	flag.Parse()

	runners := map[string]func(bool, uint64, string) error{
		"fig1":      runFig1,
		"fig2":      runFig2,
		"fig4":      runFig4,
		"fig5":      runFig5,
		"fig7":      runFig7,
		"fig8":      runFig8,
		"fig9":      runFig9,
		"fig10":     runFig10Table2,
		"table2":    runFig10Table2,
		"fig11":     runFig11,
		"fig12":     runFig12,
		"table3":    runTable3,
		"spread":    runSpread,
		"outage":    runOutage,
		"chaos":     runChaos,
		"ablations": runAblations,
	}
	order := []string{"fig1", "fig2", "fig4", "fig5", "fig7", "fig8", "fig9",
		"table2", "fig11", "fig12", "table3", "spread", "outage", "chaos", "ablations"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else if _, ok := runners[*exp]; ok {
		ids = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		if err := runners[id](*quick, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}

func pick(seed, def uint64) uint64 {
	if seed != 0 {
		return seed
	}
	return def
}

// writeCSV saves a plot-ready CSV into outDir when -out is set.
func writeCSV(outDir, name string, write func(w *os.File) error) error {
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outDir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runFig1(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig1()
	if quick {
		cfg.Rows, cfg.RowServers, cfg.Measure = 4, 80, 12*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig1(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig1(os.Stdout, res)
	if err := writeCSV(outDir, "fig1.csv", func(w *os.File) error { return res.WriteCSV(w) }); err != nil {
		return err
	}
	return nil
}

func runFig2(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig2()
	if quick {
		cfg.RowServers, cfg.CorrSpan = 80, 12*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig2(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig2(os.Stdout, res)
	return nil
}

func runFig4(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig4()
	if quick {
		cfg.RowServers, cfg.FreezeCount = 160, 32
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig4(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig4(os.Stdout, res)
	if err := writeCSV(outDir, "fig4.csv", func(w *os.File) error { return res.WriteCSV(w) }); err != nil {
		return err
	}
	return nil
}

func runFig5(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig5()
	if quick {
		cfg.RowServers = 160
		cfg.Cycles = 1
		cfg.URatios = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig5(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig5(os.Stdout, res)
	if err := writeCSV(outDir, "fig5.csv", func(w *os.File) error { return res.WriteCSV(w) }); err != nil {
		return err
	}
	return nil
}

func runFig7(quick bool, seed uint64, outDir string) error {
	n := 500000
	if quick {
		n = 50000
	}
	experiment.FormatFig7(os.Stdout, experiment.RunFig7(pick(seed, 7), n))
	return nil
}

func runFig8(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig8()
	if quick {
		cfg.RowServers = 160
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig8(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig8(os.Stdout, res)
	if err := writeCSV(outDir, "fig8.csv", func(w *os.File) error { return res.WriteCSV(w) }); err != nil {
		return err
	}
	return nil
}

func runFig9(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig9()
	if quick {
		cfg.RowServers, cfg.Measure = 160, 12*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig9(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig9(os.Stdout, res)
	return nil
}

func runFig10Table2(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultTable2()
	if quick {
		cfg.RowServers = 160
		cfg.Warmup = sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunTable2(cfg)
	if err != nil {
		return err
	}
	experiment.FormatTable2(os.Stdout, res)
	fmt.Println()
	experiment.FormatFig10(os.Stdout, res)
	if err := writeCSV(outDir, "fig10_light.csv", func(w *os.File) error { return res.LightSer.WriteCSV(w) }); err != nil {
		return err
	}
	if err := writeCSV(outDir, "fig10_heavy.csv", func(w *os.File) error { return res.HeavySer.WriteCSV(w) }); err != nil {
		return err
	}
	return nil
}

func runFig11(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig11()
	if quick {
		cfg.RowServers, cfg.ServiceServers = 80, 16
		cfg.RequestsPerSecond = 60
		cfg.Pretrain, cfg.Measure = 12*sim.Hour, sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig11(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig11(os.Stdout, res)
	return nil
}

func runFig12(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultFig12()
	if quick {
		cfg.RowServers = 160
		cfg.Warmup, cfg.Pretrain = sim.Hour, 8*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunFig12(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig12(os.Stdout, res)
	if err := writeCSV(outDir, "fig12.csv", func(w *os.File) error { return res.WriteCSV(w) }); err != nil {
		return err
	}
	return nil
}

func runSpread(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultSpread()
	if quick {
		cfg.RowServers, cfg.Measure = 80, 8*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	rows, err := experiment.RunSpread(cfg)
	if err != nil {
		return err
	}
	experiment.FormatSpread(os.Stdout, rows)
	return nil
}

func runOutage(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultOutage()
	if quick {
		cfg.RowServers = 120
		cfg.Pretrain, cfg.Measure = 8*sim.Hour, 8*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	rows, err := experiment.RunOutage(cfg)
	if err != nil {
		return err
	}
	experiment.FormatOutage(os.Stdout, rows)
	return nil
}

func runChaos(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultChaos()
	if quick {
		cfg.RowServers = 80
		cfg.Pretrain, cfg.Measure = 6*sim.Hour, 12*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunChaos(cfg)
	if err != nil {
		return err
	}
	experiment.FormatChaos(os.Stdout, res)
	return nil
}

func runAblations(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultAblation()
	if quick {
		cfg.RowServers = 120
		cfg.Warmup, cfg.Pretrain, cfg.Measure = sim.Hour, 12*sim.Hour, 12*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)

	sel, err := experiment.RunSelectionAblation(cfg)
	if err != nil {
		return err
	}
	experiment.FormatAblation(os.Stdout, "freeze selection (§3.5)", sel)

	rst, err := experiment.RunRStableAblation(cfg, nil)
	if err != nil {
		return err
	}
	experiment.FormatAblation(os.Stdout, "rstable hysteresis (§3.5)", rst)

	et, err := experiment.RunEtPercentileAblation(cfg, nil)
	if err != nil {
		return err
	}
	experiment.FormatAblation(os.Stdout, "Et percentile (§3.6)", et)

	hor, err := experiment.RunHorizonAblation(cfg, nil)
	if err != nil {
		return err
	}
	experiment.FormatAblation(os.Stdout, "RHC horizon (Lemma 3.1)", hor)

	capr, err := experiment.RunCappingAblation(cfg)
	if err != nil {
		return err
	}
	experiment.FormatCappingAblation(os.Stdout, capr)
	return nil
}

func runTable3(quick bool, seed uint64, outDir string) error {
	cfg := experiment.DefaultTable3()
	if quick {
		cfg.RowServers = 160
		cfg.Warmup, cfg.Pretrain, cfg.Measure = sim.Hour, 12*sim.Hour, 12*sim.Hour
	}
	cfg.Seed = pick(seed, cfg.Seed)
	res, err := experiment.RunTable3(cfg)
	if err != nil {
		return err
	}
	experiment.FormatTable3(os.Stdout, res)
	return nil
}
