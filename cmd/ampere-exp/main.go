// Command ampere-exp regenerates any table or figure from the paper's
// evaluation section against the simulated data center.
//
// Usage:
//
//	ampere-exp -exp fig1|fig2|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|
//	                table2|table3|spread|outage|chaos|ablations|scale|
//	                gridstorm|whatif|tournament|all
//	           [-quick] [-seed N] [-out dir] [-parallel N] [-ctl-parallel N]
//
// -quick shrinks cluster sizes and time spans for a fast pass (the same
// configurations the test suite and benchmarks use); the default sizes
// follow the paper (400-server rows, 24-hour spans) and take a few minutes
// in total. -out additionally writes plot-ready CSV series for the figure
// experiments into the given directory.
//
// -parallel N fans independent runs — the selected experiments, and the
// variants inside multi-run experiments (table2, table3, spread, outage,
// chaos, ablations) — across up to N workers (default: the CPU count;
// 1 restores the legacy serial path). Each run builds a fully isolated rig
// from its own seed and its report is buffered and printed in the fixed
// experiment order, so stdout is byte-identical at any -parallel value;
// per-experiment timing goes to stderr as runs complete.
//
// -ctl-parallel N additionally fans each controller's per-domain plan phase
// across N workers (0/1 = serial, -1 = all CPUs). Side effects are always
// applied serially in domain order, so this too never changes output.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/experiment"
	"repro/internal/runner"
	"repro/internal/sim"
)

// runCtx carries the shared CLI knobs into each experiment runner.
type runCtx struct {
	quick       bool
	seed        uint64
	outDir      string
	parallel    int
	ctlParallel int
}

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig12, table2, table3, all)")
	quick := flag.Bool("quick", false, "shrunken fast configuration")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 = per-experiment default)")
	out := flag.String("out", "", "directory to also write plot-ready CSV series into")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker count for independent runs (1 = serial)")
	ctlParallel := flag.Int("ctl-parallel", 0,
		"controller plan-phase workers per domain set (0/1 = serial, -1 = all CPUs); output is identical at any value")
	flag.Parse()

	runners := map[string]func(io.Writer, runCtx) error{
		"fig1":       runFig1,
		"fig2":       runFig2,
		"fig4":       runFig4,
		"fig5":       runFig5,
		"fig7":       runFig7,
		"fig8":       runFig8,
		"fig9":       runFig9,
		"fig10":      runFig10Table2,
		"table2":     runFig10Table2,
		"fig11":      runFig11,
		"fig11scale": runFig11Scale,
		"fig12":      runFig12,
		"table3":     runTable3,
		"spread":     runSpread,
		"outage":     runOutage,
		"chaos":      runChaos,
		"ablations":  runAblations,
		"scale":      runScale,
		"gridstorm":  runGridstorm,
		"whatif":     runWhatif,
		"tournament": runTournament,
	}
	order := []string{"fig1", "fig2", "fig4", "fig5", "fig7", "fig8", "fig9",
		"table2", "fig11", "fig11scale", "fig12", "table3", "spread", "outage", "chaos",
		"ablations", "scale", "gridstorm", "whatif", "tournament"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else if _, ok := runners[*exp]; ok {
		ids = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	rc := runCtx{quick: *quick, seed: *seed, outDir: *out, parallel: *parallel, ctlParallel: *ctlParallel}

	// Each experiment renders into its own buffer; buffers are printed in
	// the fixed order above, so stdout does not depend on completion order.
	units := make([]runner.Unit[[]byte], len(ids))
	for i, id := range ids {
		id := id
		units[i] = runner.Unit[[]byte]{Name: id, Run: func() ([]byte, error) {
			var buf bytes.Buffer
			if err := runners[id](&buf, rc); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		}}
	}
	bufs, err := runner.Run(units, runner.Options{
		Workers: rc.parallel,
		OnDone: func(r runner.Report) {
			switch {
			case r.Skipped:
				fmt.Fprintf(os.Stderr, "  [%s skipped]\n", r.Name)
			case r.Err != nil:
				fmt.Fprintf(os.Stderr, "  [%s failed after %.1fs: %v]\n", r.Name, r.Elapsed.Seconds(), r.Err)
			default:
				fmt.Fprintf(os.Stderr, "  [%s completed in %.1fs]\n", r.Name, r.Elapsed.Seconds())
			}
		},
	})
	for _, b := range bufs {
		if len(b) > 0 {
			os.Stdout.Write(b)
			fmt.Println()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func pick(seed, def uint64) uint64 {
	if seed != 0 {
		return seed
	}
	return def
}

// writeCSV saves a plot-ready CSV into outDir when -out is set. Every
// experiment writes distinct file names, so concurrent runs never collide.
func writeCSV(outDir, name string, write func(w *os.File) error) error {
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outDir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runFig1(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig1()
	if rc.quick {
		cfg.Rows, cfg.RowServers, cfg.Measure = 4, 80, 12*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig1(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig1(w, res)
	return writeCSV(rc.outDir, "fig1.csv", func(w *os.File) error { return res.WriteCSV(w) })
}

func runFig2(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig2()
	if rc.quick {
		cfg.RowServers, cfg.CorrSpan = 80, 12*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig2(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig2(w, res)
	return nil
}

func runFig4(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig4()
	if rc.quick {
		cfg.RowServers, cfg.FreezeCount = 160, 32
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig4(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig4(w, res)
	return writeCSV(rc.outDir, "fig4.csv", func(w *os.File) error { return res.WriteCSV(w) })
}

func runFig5(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig5()
	if rc.quick {
		cfg.RowServers = 160
		cfg.Cycles = 1
		cfg.URatios = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig5(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig5(w, res)
	return writeCSV(rc.outDir, "fig5.csv", func(w *os.File) error { return res.WriteCSV(w) })
}

func runFig7(w io.Writer, rc runCtx) error {
	n := 500000
	if rc.quick {
		n = 50000
	}
	experiment.FormatFig7(w, experiment.RunFig7(pick(rc.seed, 7), n))
	return nil
}

func runFig8(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig8()
	if rc.quick {
		cfg.RowServers = 160
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig8(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig8(w, res)
	return writeCSV(rc.outDir, "fig8.csv", func(w *os.File) error { return res.WriteCSV(w) })
}

func runFig9(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig9()
	if rc.quick {
		cfg.RowServers, cfg.Measure = 160, 12*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig9(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig9(w, res)
	return nil
}

func runFig10Table2(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultTable2()
	if rc.quick {
		cfg.RowServers = 160
		cfg.Warmup = sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	cfg.CtlParallel = rc.ctlParallel
	res, err := experiment.RunTable2(cfg)
	if err != nil {
		return err
	}
	experiment.FormatTable2(w, res)
	fmt.Fprintln(w)
	experiment.FormatFig10(w, res)
	if err := writeCSV(rc.outDir, "fig10_light.csv", func(w *os.File) error { return res.LightSer.WriteCSV(w) }); err != nil {
		return err
	}
	return writeCSV(rc.outDir, "fig10_heavy.csv", func(w *os.File) error { return res.HeavySer.WriteCSV(w) })
}

func runFig11(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig11()
	if rc.quick {
		cfg.RowServers, cfg.ServiceServers = 80, 16
		cfg.RequestsPerSecond = 60
		cfg.Pretrain, cfg.Measure = 12*sim.Hour, sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig11(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig11(w, res)
	return nil
}

// runFig11Scale is the Fig 11 comparison at the paper's deployment size: a
// 100k-server fleet whose hot rows host a 3-million-user service, scored as
// per-op/per-class p999 and SLO-miss under row capping vs the Ampere
// controller. Regimes fan across two workers; output is byte-identical at
// any -parallel / -ctl-parallel value.
func runFig11Scale(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig11Scale()
	if rc.quick {
		cfg = experiment.QuickFig11Scale()
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	cfg.CtlParallel = rc.ctlParallel
	res, err := experiment.RunFig11Scale(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig11Scale(w, cfg, res)
	return writeCSV(rc.outDir, "fig11scale.csv", func(w *os.File) error { return res.WriteCSV(w) })
}

func runFig12(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultFig12()
	if rc.quick {
		cfg.RowServers = 160
		cfg.Warmup, cfg.Pretrain = sim.Hour, 8*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	res, err := experiment.RunFig12(cfg)
	if err != nil {
		return err
	}
	experiment.FormatFig12(w, res)
	return writeCSV(rc.outDir, "fig12.csv", func(w *os.File) error { return res.WriteCSV(w) })
}

func runSpread(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultSpread()
	if rc.quick {
		cfg.RowServers, cfg.Measure = 80, 8*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	rows, err := experiment.RunSpread(cfg)
	if err != nil {
		return err
	}
	experiment.FormatSpread(w, rows)
	return nil
}

func runOutage(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultOutage()
	if rc.quick {
		cfg.RowServers = 120
		cfg.Pretrain, cfg.Measure = 8*sim.Hour, 8*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	rows, err := experiment.RunOutage(cfg)
	if err != nil {
		return err
	}
	experiment.FormatOutage(w, rows)
	return nil
}

func runChaos(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultChaos()
	if rc.quick {
		cfg.RowServers = 80
		cfg.Pretrain, cfg.Measure = 6*sim.Hour, 12*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	cfg.CtlParallel = rc.ctlParallel
	res, err := experiment.RunChaos(cfg)
	if err != nil {
		return err
	}
	experiment.FormatChaos(w, res)
	return nil
}

func runAblations(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultAblation()
	if rc.quick {
		cfg.RowServers = 120
		cfg.Warmup, cfg.Pretrain, cfg.Measure = sim.Hour, 12*sim.Hour, 12*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel

	sel, err := experiment.RunSelectionAblation(cfg)
	if err != nil {
		return err
	}
	experiment.FormatAblation(w, "freeze selection (§3.5)", sel)

	rst, err := experiment.RunRStableAblation(cfg, nil)
	if err != nil {
		return err
	}
	experiment.FormatAblation(w, "rstable hysteresis (§3.5)", rst)

	et, err := experiment.RunEtPercentileAblation(cfg, nil)
	if err != nil {
		return err
	}
	experiment.FormatAblation(w, "Et percentile (§3.6)", et)

	hor, err := experiment.RunHorizonAblation(cfg, nil)
	if err != nil {
		return err
	}
	experiment.FormatAblation(w, "RHC horizon (Lemma 3.1)", hor)

	capr, err := experiment.RunCappingAblation(cfg)
	if err != nil {
		return err
	}
	experiment.FormatCappingAblation(w, capr)
	return nil
}

// runScale runs the weak-scaling sweep, then the federated scale run (a
// million servers across 8 DCs; quick: 1,600 across 4). The single-DC sizes
// run serially regardless of -parallel (each size's wall-clock measurement
// needs the machine to itself); the federated half honors -parallel as its
// shard worker count and -ctl-parallel for each DC controller's plan phase,
// neither of which changes stdout. Wall timings go to stderr.
func runScale(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultScale()
	if rc.quick {
		cfg.RowCounts = []int{1, 5, 25} // 400 / 2k / 10k servers
		cfg.Warmup, cfg.Measure = 10*sim.Minute, 30*sim.Minute
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	rows, err := experiment.RunScale(cfg)
	if err != nil {
		return err
	}
	experiment.FormatScale(w, rows)
	experiment.FormatScaleTiming(os.Stderr, rows, cfg.Measure)

	fcfg := experiment.DefaultFedScale()
	if rc.quick {
		fcfg = experiment.QuickFedScale()
	}
	fcfg.Seed = pick(rc.seed, fcfg.Seed)
	fcfg.Workers = rc.parallel
	fcfg.CtlParallel = rc.ctlParallel
	fres, err := experiment.RunFedScale(fcfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	experiment.FormatFedScale(w, fres)
	experiment.FormatFedScaleTiming(os.Stderr, fres)
	return nil
}

// runGridstorm replays the same 20 % grid curtailment as a cliff and as a
// ramp-limited schedule over a 100k-server fleet (quick: 320 servers) and
// reports breaker trips, violation windows and recovery for each regime.
func runGridstorm(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultGridstorm()
	if rc.quick {
		cfg = experiment.QuickGridstorm()
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	cfg.CtlParallel = rc.ctlParallel
	runs, err := experiment.RunGridstorm(cfg)
	if err != nil {
		return err
	}
	experiment.FormatGridstorm(w, cfg, runs)
	return nil
}

// runWhatif demonstrates the counterfactual engine: snapshot the gridstorm
// cliff regime at the dip-onset journal event, self-replay to prove
// byte-identity, then replay with a ramped-budget patch and report the
// trips/violations the alternative would have avoided. Wall timings go to
// stderr; stdout is deterministic.
func runWhatif(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultGridstorm()
	if rc.quick {
		cfg = experiment.QuickGridstorm()
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.CtlParallel = rc.ctlParallel
	res, err := experiment.RunWhatif(cfg)
	if err != nil {
		return err
	}
	experiment.FormatWhatif(w, res)
	return nil
}

// runTournament forks one factual gridstorm cliff run at dip onset and
// replays the default policy grid (selection × Et estimator × unfreeze ×
// horizon × ramp) from the shared snapshot, ranking the contenders by
// trips, violation ticks, frozen capacity and completed jobs. Replays fan
// across -parallel workers; output is byte-identical at any worker count.
// -out additionally writes the ranked result as tournament.json.
func runTournament(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultTournament()
	if rc.quick {
		cfg = experiment.QuickTournament()
	}
	cfg.Grid.Seed = pick(rc.seed, cfg.Grid.Seed)
	cfg.Grid.CtlParallel = rc.ctlParallel
	cfg.Parallel = rc.parallel
	res, err := experiment.RunTournament(cfg)
	if err != nil {
		return err
	}
	experiment.FormatTournament(w, res)
	return writeCSV(rc.outDir, "tournament.json", func(w *os.File) error { return res.WriteJSON(w) })
}

func runTable3(w io.Writer, rc runCtx) error {
	cfg := experiment.DefaultTable3()
	if rc.quick {
		cfg.RowServers = 160
		cfg.Warmup, cfg.Pretrain, cfg.Measure = sim.Hour, 12*sim.Hour, 12*sim.Hour
	}
	cfg.Seed = pick(rc.seed, cfg.Seed)
	cfg.Parallel = rc.parallel
	res, err := experiment.RunTable3(cfg)
	if err != nil {
		return err
	}
	experiment.FormatTable3(w, res)
	return nil
}
