# Tier-1 is the merge gate: everything must build, lint clean (gofmt + vet),
# and pass the full suite under the race detector.
.PHONY: tier1 build lint vet test race fuzz chaos

tier1: build lint race

build:
	go build ./...

# lint fails when any file needs reformatting (gofmt -l prints it) or vet
# finds a problem.
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	go vet ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Short live-fuzz pass over the two fuzz targets (the committed seed corpus
# already replays in `make test`).
fuzz:
	go test ./internal/scenario/ -fuzz FuzzLoad -fuzztime 30s
	go test ./internal/tsdb/ -fuzz FuzzQueryAPI -fuzztime 30s

# Fault-injection drill: naive vs resilient controller under the same storm.
chaos:
	go run ./cmd/ampere-exp -exp chaos -quick
