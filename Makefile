# Tier-1 is the merge gate: everything must build, vet clean, and pass the
# full suite under the race detector.
.PHONY: tier1 build vet test race fuzz chaos

tier1: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Short live-fuzz pass over the two fuzz targets (the committed seed corpus
# already replays in `make test`).
fuzz:
	go test ./internal/scenario/ -fuzz FuzzLoad -fuzztime 30s
	go test ./internal/tsdb/ -fuzz FuzzQueryAPI -fuzztime 30s

# Fault-injection drill: naive vs resilient controller under the same storm.
chaos:
	go run ./cmd/ampere-exp -exp chaos -quick
