# Tier-1 is the merge gate: everything must build, lint clean (gofmt + vet),
# pass the full suite under the race detector, and pass the experiment +
# runner suites with shuffled test order (order-dependence is how shared
# state between parallel run units would first show up).
.PHONY: tier1 build lint vet test race race-shuffle fuzz fuzz-smoke chaos \
	bench-runner bench-scale bench-scale-quick bench-check gridstorm \
	whatif whatif-smoke tournament tournament-smoke fig11scale fig11-smoke \
	fed-smoke

tier1: build lint race race-shuffle bench-scale-quick fuzz-smoke whatif-smoke \
	tournament-smoke fig11-smoke fed-smoke

build:
	go build ./...

# lint fails when any file needs reformatting (gofmt -l prints it) or vet
# finds a problem.
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	go vet ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# The parallel fan-out suites, shuffled: any cross-unit state dependence
# fails here before it can corrupt merged experiment output.
race-shuffle:
	go test -race -shuffle=on ./internal/experiment/... ./internal/runner/...

# Short live-fuzz pass over every fuzz target (the committed seed corpus
# already replays in `make test`).
fuzz:
	go test ./internal/scenario/ -fuzz FuzzLoad -fuzztime 30s
	go test ./internal/scenario/ -fuzz FuzzBudgetSchedule -fuzztime 30s
	go test ./internal/scenario/ -fuzz FuzzPolicySpec -fuzztime 30s
	go test ./internal/tsdb/ -fuzz FuzzQueryAPI -fuzztime 30s
	go test ./internal/whatif/ -run '^$$' -fuzz FuzzSnapshotCodec -fuzztime 30s

# Tier-1's fuzz gate: a quick live pass over each target on top of the
# committed-corpus replay, short enough to keep the merge gate fast.
fuzz-smoke:
	go test ./internal/scenario/ -fuzz FuzzLoad -fuzztime 30s
	go test ./internal/scenario/ -fuzz FuzzBudgetSchedule -fuzztime 30s
	go test ./internal/scenario/ -fuzz FuzzPolicySpec -fuzztime 30s
	go test ./internal/tsdb/ -fuzz FuzzQueryAPI -fuzztime 30s
	go test ./internal/whatif/ -run '^$$' -fuzz FuzzSnapshotCodec -fuzztime 30s

# The grid-event resilience experiment: the same 20% curtailment as a cliff
# and ramp-limited, quick scale (full 100k: `go run ./cmd/ampere-exp -exp
# gridstorm`).
gridstorm:
	go run ./cmd/ampere-exp -exp gridstorm -quick

# Counterfactual demo: snapshot the gridstorm cliff at dip onset, verify the
# self-replay is byte-identical, then score a ramped-budget alternative
# ("would have avoided every trip"). Same engine as `ampere-trace why` and
# powermon's /whatif endpoint.
whatif:
	go run ./cmd/ampere-exp -exp whatif -quick

# Tier-1's snapshot/replay smoke: snapshot a 400-server gridstorm run
# mid-storm, self-replay, and require an empty diff.
whatif-smoke:
	go test ./internal/whatif/ -run TestWhatifSelfDiff400 -count=1

# Policy tournament: fork one factual gridstorm cliff run at dip onset and
# replay the default policy grid (selection × Et estimator × unfreeze ×
# horizon × ramp) from the shared snapshot, ranked by trips / violation
# ticks / frozen capacity / completed jobs. Full 100k-server grid:
# `go run ./cmd/ampere-exp -exp tournament`.
tournament:
	go run ./cmd/ampere-exp -exp tournament -quick

# Tier-1's tournament smoke: a 400-server grid over five patches, ranked
# deterministically and byte-identical at replay worker counts 1 and 4.
tournament-smoke:
	go test ./internal/experiment/ -run TestTournamentSmoke400 -count=1

# Fig 11 at deployment scale: a 100k-server fleet whose hot rows host a
# 3-million-user service, row capping vs Ampere scored as per-op/per-class
# p999 and SLO-miss (full scale: `go run ./cmd/ampere-exp -exp fig11scale`).
fig11scale:
	go run ./cmd/ampere-exp -exp fig11scale -quick

# Tier-1's fig11scale smoke: the 240-server quick fleet, asserting the
# capping-vs-freezing tail gap and live SLO-miss accounting.
fig11-smoke:
	go test ./internal/experiment/ -run TestFig11ScaleSmoke400 -count=1

# Fault-injection drill: naive vs resilient controller under the same storm.
chaos:
	go run ./cmd/ampere-exp -exp chaos -quick

# Tier-1's federation smoke: byte-identity of the federated tick across
# shard worker counts (4 small DCs with a mid-run headroom shift), plus the
# 4-DC × 400-server quick federated scale run end to end.
fed-smoke:
	go test ./internal/federate/ -count=1
	go test ./internal/experiment/ -run TestFedScaleSmoke -count=1

# Weak-scaling baseline: the BenchmarkScale{Sweep,Placement,ControllerTick}
# family at 400 / 10k / 100k servers, recorded to BENCH_scale.json for
# regression comparison (see docs/OPERATIONS.md for how to read it). Three
# repetitions per benchmark; bench_to_json keeps the fastest, so one noisy
# run on a shared machine doesn't poison the baseline.
bench-scale:
	go test -run '^$$' -bench 'BenchmarkScale' -count=3 -benchmem . | tee BENCH_scale.txt
	awk -f scripts/bench_to_json.awk BENCH_scale.txt > BENCH_scale.json
	rm -f BENCH_scale.txt

# One-row smoke of the scale family (part of tier1): exercises every scale
# benchmark once, which includes the zero-allocation sweep contract and the
# controller tick's steady-state allocation ceiling (benchControllerTick
# fails the run outright when a tick allocates more than its budget).
bench-scale-quick:
	go test -run '^$$' -bench 'BenchmarkScale[A-Za-z]*/servers=400' -benchtime 1x .

# Regression gate: re-runs the scale family (min of three repetitions, same
# noise discipline as the baseline) and diffs ns/op against the committed
# BENCH_scale.json, failing on any >25% slowdown. Run after touching a hot
# path; refresh the baseline with `make bench-scale` when a deliberate
# change moves the numbers.
bench-check:
	go test -run '^$$' -bench 'BenchmarkScale' -count=3 -benchmem . > BENCH_fresh.txt
	awk -f scripts/bench_to_json.awk BENCH_fresh.txt > BENCH_fresh.json
	rm -f BENCH_fresh.txt
	sh scripts/bench_compare BENCH_fresh.json BENCH_scale.json
	rm -f BENCH_fresh.json

# Records serial vs parallel wall-clock for the shrunken figure suite; on a
# ≥4-core machine the parallel run should be ≥2× faster with byte-identical
# results (parallel_test.go checks the identity half).
bench-runner:
	go test -run '^$$' -bench 'BenchmarkFigureSuite' -benchtime 1x ./internal/experiment/
